//! Synthetic DBLP-like bibliography generator.
//!
//! The paper's experiments (Sec. 6) run over the Journals portion of the
//! DBLP data set: ~4.6 million nodes, ~100 MB, articles with a variable
//! number of authors. That dump is not redistributable here, so this
//! crate generates a deterministic synthetic equivalent that preserves
//! the properties the grouping workload exercises:
//!
//! * repeated sub-elements: 1–5 `author` children per `article`;
//! * skewed author productivity (Zipf-distributed author choice), so
//!   group sizes vary by orders of magnitude;
//! * shared authorship, so grouping is non-partitioning;
//! * optional `institution` sub-elements under authors, for the
//!   group-by-institution queries of Sec. 1;
//! * titles long enough that populating them dominates output cost, as
//!   in the paper ("the content of title nodes is often fairly long").
//!
//! Generation is seeded and scale-free: `DblpConfig { articles, .. }`
//! controls the size (≈23 stored nodes per article with institutions,
//! ≈15 without).

pub mod zipf;

use smallrand::rngs::StdRng;
use smallrand::{RngExt, SeedableRng};
use std::fmt::Write as _;
use zipf::Zipf;

/// Configuration of the synthetic bibliography.
#[derive(Debug, Clone)]
pub struct DblpConfig {
    /// Number of `article` elements.
    pub articles: usize,
    /// Size of the author pool.
    pub author_pool: usize,
    /// Zipf exponent for author popularity (0 = uniform).
    pub zipf_exponent: f64,
    /// Maximum authors per article (minimum is 1).
    pub max_authors: usize,
    /// Attach an `institution` child to each author element.
    pub institutions: bool,
    /// Ragged hierarchies: each author's name sits at a varying depth
    /// below `<author>` — bare text, wrapped in `<name>`, or nested
    /// `<name><full>…</full></name>` — chosen per element. Exercises
    /// grouping bases whose key node is not uniformly shaped (the XOLAP
    /// lattice's "complex hierarchy" case). Ignored when `institutions`
    /// is set.
    pub ragged_authors: bool,
    /// Size of the institution pool.
    pub institution_pool: usize,
    /// RNG seed — equal configs generate byte-identical documents.
    pub seed: u64,
}

impl Default for DblpConfig {
    fn default() -> Self {
        DblpConfig {
            articles: 1000,
            author_pool: 300,
            zipf_exponent: 0.9,
            max_authors: 5,
            institutions: false,
            ragged_authors: false,
            institution_pool: 40,
            seed: 20020324, // EDBT 2002
        }
    }
}

impl DblpConfig {
    /// A config sized by article count with the other knobs at defaults
    /// scaled sensibly (pool ≈ articles/3, capped).
    pub fn sized(articles: usize) -> Self {
        DblpConfig {
            articles,
            author_pool: (articles / 3).clamp(10, 200_000),
            ..DblpConfig::default()
        }
    }

    /// Enable institutions.
    pub fn with_institutions(mut self) -> Self {
        self.institutions = true;
        self
    }

    /// Enable ragged author hierarchies (varying name depth).
    pub fn with_ragged_authors(mut self) -> Self {
        self.ragged_authors = true;
        self
    }

    /// Set the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

const FIRST_NAMES: &[&str] = &[
    "Alice", "Bob", "Carol", "David", "Erika", "Frank", "Grace", "Hector", "Irene", "Jack",
    "Karen", "Liang", "Maria", "Nikos", "Olga", "Pedro", "Qing", "Rosa", "Stefan", "Tomoko",
    "Umar", "Vera", "Wei", "Ximena", "Yuri", "Zoe",
];

const LAST_NAMES: &[&str] = &[
    "Adams",
    "Brown",
    "Chen",
    "Dimitriou",
    "Evans",
    "Fischer",
    "Gupta",
    "Hansen",
    "Ivanov",
    "Jagadish",
    "Kim",
    "Lakshmanan",
    "Moreno",
    "Nguyen",
    "Okafor",
    "Paparizos",
    "Quispe",
    "Rossi",
    "Srivastava",
    "Tanaka",
    "Ueda",
    "Vasquez",
    "Wu",
    "Xu",
    "Yamamoto",
    "Zhang",
];

const TITLE_WORDS: &[&str] = &[
    "Transaction",
    "Management",
    "Querying",
    "XML",
    "Semistructured",
    "Data",
    "Indexing",
    "Optimization",
    "Algebra",
    "Pattern",
    "Matching",
    "Storage",
    "Views",
    "Streams",
    "Integration",
    "Schema",
    "Evolution",
    "Recovery",
    "Concurrency",
    "Control",
    "Parallel",
    "Distributed",
    "Caching",
    "Replication",
    "Mining",
    "Warehousing",
    "Grouping",
    "Aggregation",
    "Join",
    "Processing",
];

const JOURNALS: &[&str] = &[
    "TODS",
    "VLDB Journal",
    "SIGMOD Record",
    "TKDE",
    "Information Systems",
    "Data Engineering Bulletin",
    "JACM",
    "Acta Informatica",
];

const INSTITUTIONS: &[&str] = &[
    "Michigan",
    "British Columbia",
    "ATT Labs",
    "Stanford",
    "Wisconsin",
    "Berkeley",
    "MIT",
    "CMU",
    "Toronto",
    "Maryland",
    "INRIA",
    "ETH",
    "Tsinghua",
    "IIT Bombay",
    "Oxford",
    "Edinburgh",
    "Aalborg",
    "Twente",
    "Tokyo",
    "Melbourne",
];

/// The generator.
pub struct DblpGenerator {
    cfg: DblpConfig,
    rng: StdRng,
    author_zipf: Zipf,
    author_names: Vec<String>,
    author_institutions: Vec<usize>,
    institution_names: Vec<String>,
}

impl DblpGenerator {
    /// Prepare a generator for `cfg`.
    pub fn new(cfg: DblpConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let author_zipf = Zipf::new(cfg.author_pool, cfg.zipf_exponent);
        let mut author_names = Vec::with_capacity(cfg.author_pool);
        let mut seen = std::collections::HashSet::new();
        for i in 0..cfg.author_pool {
            // Distinct names: First Last, disambiguated by index on
            // collision.
            let f = FIRST_NAMES[rng.random_range(0..FIRST_NAMES.len())];
            let l = LAST_NAMES[rng.random_range(0..LAST_NAMES.len())];
            let mut name = format!("{f} {l}");
            if !seen.insert(name.clone()) {
                name = format!("{f} {l} {i:05}");
                seen.insert(name.clone());
            }
            author_names.push(name);
        }
        let institution_names: Vec<String> = (0..cfg.institution_pool)
            .map(|i| {
                format!(
                    "{} Institute {}",
                    INSTITUTIONS[i % INSTITUTIONS.len()],
                    i / INSTITUTIONS.len()
                )
            })
            .collect();
        let author_institutions = (0..cfg.author_pool)
            .map(|_| rng.random_range(0..cfg.institution_pool.max(1)))
            .collect();
        DblpGenerator {
            cfg,
            rng,
            author_zipf,
            author_names,
            author_institutions,
            institution_names,
        }
    }

    /// Generate the bibliography as an XML string (root element `dblp`).
    pub fn generate_xml(mut self) -> String {
        // ~220 bytes per article.
        let mut out = String::with_capacity(64 + self.cfg.articles * 220);
        out.push_str("<dblp>");
        for i in 0..self.cfg.articles {
            self.write_article(&mut out, i);
        }
        out.push_str("</dblp>");
        out
    }

    /// Author name by pool rank (for test oracles).
    pub fn author_name(&self, rank: usize) -> &str {
        &self.author_names[rank]
    }

    fn write_article(&mut self, out: &mut String, idx: usize) {
        let n_authors = sample_author_count(&mut self.rng, self.cfg.max_authors);
        // Distinct authors within one article.
        let mut chosen: Vec<usize> = Vec::with_capacity(n_authors);
        let mut guard = 0;
        while chosen.len() < n_authors && guard < 50 {
            let a = self.author_zipf.sample(&mut self.rng);
            if !chosen.contains(&a) {
                chosen.push(a);
            }
            guard += 1;
        }

        out.push_str("<article>");
        // Title: 4–9 words plus a unique ordinal so titles are distinct.
        let words = self.rng.random_range(4..=9);
        out.push_str("<title>");
        for w in 0..words {
            if w > 0 {
                out.push(' ');
            }
            out.push_str(TITLE_WORDS[self.rng.random_range(0..TITLE_WORDS.len())]);
        }
        let _ = write!(out, " No{idx}");
        out.push_str("</title>");

        for &a in &chosen {
            out.push_str("<author>");
            if self.cfg.institutions {
                let _ = write!(
                    out,
                    "<name>{}</name><institution>{}</institution>",
                    self.author_names[a], self.institution_names[self.author_institutions[a]]
                );
            } else if self.cfg.ragged_authors {
                // Same name pool, but the name lands at depth 0, 1, or 2
                // below <author> — picked per element, so one author's
                // occurrences differ in shape across articles.
                match self.rng.random_range(0..4u32) {
                    0 => {
                        let _ = write!(out, "<name>{}</name>", self.author_names[a]);
                    }
                    1 => {
                        let _ = write!(out, "<name><full>{}</full></name>", self.author_names[a]);
                    }
                    _ => out.push_str(&self.author_names[a]),
                }
            } else {
                out.push_str(&self.author_names[a]);
            }
            out.push_str("</author>");
        }

        let year = self.rng.random_range(1970..=2002);
        let journal = JOURNALS[self.rng.random_range(0..JOURNALS.len())];
        let volume = self.rng.random_range(1..=40);
        let pages_lo = self.rng.random_range(1..=900);
        let _ = write!(
            out,
            "<journal>{journal}</journal><volume>{volume}</volume><year>{year}</year><pages>{}-{}</pages>",
            pages_lo,
            pages_lo + self.rng.random_range(5..=40)
        );
        out.push_str("</article>");
    }
}

/// 1–`max` authors with a skew towards small counts
/// (≈45% one author, ≈30% two, tapering off).
fn sample_author_count<R: RngExt>(rng: &mut R, max: usize) -> usize {
    let max = max.max(1);
    let u: f64 = rng.random_range(0.0..1.0);
    let mut p = 0.45;
    let mut acc = p;
    let mut k = 1;
    while k < max && u > acc {
        k += 1;
        p *= 0.6;
        acc += p;
    }
    k.min(max)
}

/// Convenience: generate and parse into a DOM document.
pub fn generate_document(cfg: DblpConfig) -> xmlparse::Document {
    let xml = DblpGenerator::new(cfg).generate_xml();
    xmlparse::parse_document(&xml).expect("generator output is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = DblpGenerator::new(DblpConfig::sized(50)).generate_xml();
        let b = DblpGenerator::new(DblpConfig::sized(50)).generate_xml();
        assert_eq!(a, b);
        let c = DblpGenerator::new(DblpConfig::sized(50).with_seed(1)).generate_xml();
        assert_ne!(a, c);
    }

    #[test]
    fn output_is_well_formed() {
        let doc = generate_document(DblpConfig::sized(100));
        assert_eq!(doc.root().name, "dblp");
        assert_eq!(doc.root().children_named("article").count(), 100);
    }

    #[test]
    fn every_article_has_title_authors_year() {
        let doc = generate_document(DblpConfig::sized(80));
        for article in doc.root().children_named("article") {
            assert!(article.child("title").is_some());
            assert!(article.child("year").is_some());
            assert!(article.child("journal").is_some());
            let n = article.children_named("author").count();
            assert!((1..=5).contains(&n), "author count {n}");
        }
    }

    #[test]
    fn author_counts_are_skewed_small() {
        let doc = generate_document(DblpConfig::sized(500));
        let mut hist = [0usize; 6];
        for article in doc.root().children_named("article") {
            hist[article.children_named("author").count()] += 1;
        }
        assert!(hist[1] > hist[3], "{hist:?}");
        assert_eq!(hist[0], 0);
    }

    #[test]
    fn popular_author_repeats_across_articles() {
        let cfg = DblpConfig {
            articles: 300,
            author_pool: 100,
            ..DblpConfig::default()
        };
        let doc = generate_document(cfg);
        let mut counts = std::collections::HashMap::new();
        for article in doc.root().children_named("article") {
            for a in article.children_named("author") {
                *counts.entry(a.text()).or_insert(0usize) += 1;
            }
        }
        let max = counts.values().copied().max().unwrap();
        assert!(max >= 10, "Zipf head author must repeat (max={max})");
        assert!(counts.len() > 30, "tail must exist ({})", counts.len());
    }

    #[test]
    fn institutions_mode_adds_nested_structure() {
        let doc = generate_document(DblpConfig::sized(30).with_institutions());
        let article = doc.root().child("article").unwrap();
        let author = article.child("author").unwrap();
        assert!(author.child("name").is_some());
        assert!(author.child("institution").is_some());
    }

    #[test]
    fn ragged_authors_vary_in_depth() {
        let doc = generate_document(DblpConfig::sized(200).with_ragged_authors());
        let (mut bare, mut nested, mut deep) = (0usize, 0usize, 0usize);
        for article in doc.root().children_named("article") {
            for author in article.children_named("author") {
                match author.child("name") {
                    None => bare += 1,
                    Some(name) if name.child("full").is_some() => deep += 1,
                    Some(_) => nested += 1,
                }
            }
        }
        assert!(
            bare > 0 && nested > 0 && deep > 0,
            "all three depths must occur (bare={bare} nested={nested} deep={deep})"
        );
        // Determinism holds with the knob on.
        let a = DblpGenerator::new(DblpConfig::sized(50).with_ragged_authors()).generate_xml();
        let b = DblpGenerator::new(DblpConfig::sized(50).with_ragged_authors()).generate_xml();
        assert_eq!(a, b);
        // And the knob actually changes the document.
        let plain = DblpGenerator::new(DblpConfig::sized(50)).generate_xml();
        assert_ne!(a, plain);
    }

    #[test]
    fn titles_are_distinct() {
        let doc = generate_document(DblpConfig::sized(200));
        let titles: std::collections::HashSet<String> = doc
            .root()
            .children_named("article")
            .map(|a| a.child("title").unwrap().text())
            .collect();
        assert_eq!(titles.len(), 200);
    }

    #[test]
    fn node_count_scales_linearly() {
        let d1 = generate_document(DblpConfig::sized(100));
        let d2 = generate_document(DblpConfig::sized(200));
        let n1 = d1.root().subtree_node_count();
        let n2 = d2.root().subtree_node_count();
        let ratio = n2 as f64 / n1 as f64;
        assert!((1.7..2.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn authors_within_article_are_distinct() {
        let doc = generate_document(DblpConfig::sized(300));
        for article in doc.root().children_named("article") {
            let authors: Vec<String> = article.children_named("author").map(|a| a.text()).collect();
            let set: std::collections::HashSet<&String> = authors.iter().collect();
            assert_eq!(set.len(), authors.len());
        }
    }

    #[test]
    fn author_count_sampler_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let k = sample_author_count(&mut rng, 5);
            assert!((1..=5).contains(&k));
        }
        assert_eq!(sample_author_count(&mut rng, 1), 1);
    }
}
