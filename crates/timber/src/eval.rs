//! The plan interpreter: logical [`Plan`] nodes → TAX operator calls.

use crate::error::Result;
use std::collections::HashMap;
use tax::exec::{par_map, par_map_owned, ExecOptions, ShardStats};
use tax::ops::keyenc;
use tax::matching::match_tree;
use tax::matching::vnode::{VNode, VTree};
use tax::ops;
use tax::pattern::{PatternNodeId, PatternTree};
use tax::tree::{Tree, TreeNodeKind};
use tax::Collection;
use xmlstore::DocumentStore;
use xquery::Plan;

/// Evaluate a plan against the store, single-threaded.
pub fn eval(store: &DocumentStore, plan: &Plan) -> Result<Collection> {
    eval_with(store, plan, &ExecOptions::default())
}

/// Evaluate a plan against the store with explicit execution options.
/// The bulk operators (selection, duplicate elimination, grouping,
/// aggregation) fan their per-tree work out over `opts.threads`.
pub fn eval_with(store: &DocumentStore, plan: &Plan, opts: &ExecOptions) -> Result<Collection> {
    Ok(match plan {
        Plan::SelectDb { pattern, sl } => ops::select::select_db_opts(store, pattern, sl, opts)?,
        Plan::SelectProject { pattern, sl, pl } => {
            ops::select::select_project_db_opts(store, pattern, sl, pl, opts)?
        }
        Plan::Project {
            input,
            pattern,
            pl,
            anchor_root,
        } => {
            let c = eval_with(store, input, opts)?;
            ops::project::project(store, &c, pattern, pl, *anchor_root)?
        }
        Plan::DupElim { input, pattern, by } => {
            let c = eval_with(store, input, opts)?;
            ops::dupelim::dup_elim_opts(store, c, pattern, *by, opts)?
        }
        Plan::LeftOuterJoinDb {
            left,
            left_pattern,
            left_label,
            right_pattern,
            right_label,
            right_sl,
            right_extract: _,
            order: _,
        } => {
            let l = eval_with(store, left, opts)?;
            ops::join::left_outer_join_db(
                store,
                &l,
                left_pattern,
                *left_label,
                right_pattern,
                *right_label,
                right_sl,
            )?
        }
        Plan::GroupBy {
            input,
            pattern,
            basis,
            ordering,
        } => {
            let c = eval_with(store, input, opts)?;
            ops::groupby::groupby_opts(store, &c, pattern, basis, ordering, opts)?
        }
        Plan::Aggregate {
            input,
            pattern,
            func,
            of,
            new_tag,
            spec,
        } => {
            let c = eval_with(store, input, opts)?;
            ops::aggregate::aggregate_opts(store, c, pattern, *func, *of, new_tag, *spec, opts)?
        }
        Plan::Rollup {
            input,
            pattern,
            basis,
            member_pattern,
            of,
            func,
            new_tag,
            flat,
        } => {
            let c = eval_with(store, input, opts)?;
            let shape = if *flat {
                ops::rollup::RollupShape::Flat
            } else {
                ops::rollup::RollupShape::Grouped
            };
            ops::rollup::rollup_opts(
                store,
                &c,
                pattern,
                basis,
                member_pattern,
                *of,
                *func,
                new_tag,
                shape,
                opts,
            )?
        }
        Plan::Union { inputs } => {
            let mut out = Vec::new();
            for input in inputs {
                out.extend(eval_with(store, input, opts)?);
            }
            out
        }
        Plan::Cube {
            input,
            pattern,
            basis,
            member_pattern,
            of,
            func,
            new_tag,
        } => {
            let c = eval_with(store, input, opts)?;
            ops::cube::cube_opts(
                store,
                &c,
                pattern,
                basis,
                member_pattern,
                *of,
                *func,
                new_tag,
                opts,
            )?
        }
        Plan::Rename { input, tag } => {
            let c = eval_with(store, input, opts)?;
            ops::rename::rename_root(store.dict(), c, tag)?
        }
        Plan::StitchConstruct {
            outer,
            outer_pattern,
            outer_label,
            inner,
            inner_pattern,
            inner_label,
            inner_extract,
            agg,
            order,
            tag,
        } => {
            let outer_c = eval_with(store, outer, opts)?;
            let inner_c = match inner {
                Some(p) => eval_with(store, p, opts)?,
                None => Vec::new(),
            };
            stitch(
                store,
                &outer_c,
                outer_pattern,
                *outer_label,
                &inner_c,
                inner_pattern,
                *inner_label,
                inner_extract,
                agg.as_ref().map(|(f, t)| (*f, t.as_str())),
                *order,
                tag,
            )?
        }
    })
}

/// The RETURN stitching of the naive plan: a full outer join on the key
/// (realized as one hash pass over the inner collection), fused with the
/// final per-binding construction and rename. Shared between this
/// interpreter and the physical executor's stitch sink.
#[allow(clippy::too_many_arguments)]
pub(crate) fn stitch(
    store: &DocumentStore,
    outer: &Collection,
    outer_pattern: &PatternTree,
    outer_label: PatternNodeId,
    inner: &Collection,
    inner_pattern: &PatternTree,
    inner_label: PatternNodeId,
    inner_extract: &[(PatternNodeId, bool)],
    agg: Option<(tax::ops::aggregate::AggFunc, &str)>,
    order: Option<(PatternNodeId, tax::ops::groupby::Direction)>,
    tag: &str,
) -> Result<Collection> {
    Ok(stitch_sharded(
        store,
        outer,
        outer_pattern,
        outer_label,
        inner,
        inner_pattern,
        inner_label,
        inner_extract,
        agg,
        order,
        tag,
        &ExecOptions::sequential(),
        1,
    )?
    .0)
}

/// One extracted part: the tree, its content (for aggregates), and its
/// ordering key.
struct Part {
    tree: Tree,
    content: Option<String>,
    order_key: Option<String>,
    rank: usize,
}

/// A part as it comes off one inner tree, before global dedup assigns
/// bucket ranks: the stitch key, the part's identity for duplicate
/// elimination, and the payload.
struct RawPart {
    key: String,
    part_id: u64,
    tree: Tree,
    content: Option<String>,
    order_key: Option<String>,
}

/// Extract the raw parts of one inner tree (every `inner_extract` node of
/// every binding, keyed by the `inner_label` content). Pure per-tree work,
/// fanned out by [`stitch_sharded`]; the cross-tree dedup happens in the
/// sequential merge that follows.
#[allow(clippy::too_many_arguments)]
fn extract_parts(
    store: &DocumentStore,
    tree_idx: usize,
    tree: &Tree,
    inner_pattern: &PatternTree,
    inner_label: PatternNodeId,
    inner_extract: &[(PatternNodeId, bool)],
    want_content: bool,
    order_label: Option<PatternNodeId>,
) -> tax::error::Result<Vec<RawPart>> {
    let vt = VTree::new(store, tree);
    let mut out = Vec::new();
    for binding in match_tree(store, tree, inner_pattern, true)? {
        let Some(key) = vt.content(binding[inner_label])? else {
            continue;
        };
        for (label, deep) in inner_extract {
            let part_id = match binding[*label] {
                VNode::Stored(e) => e.id.0 as u64,
                VNode::Arena(i) => match &tree.node(i).kind {
                    TreeNodeKind::Ref { node, .. } => node.id.0 as u64,
                    // Constructed nodes have no global identity;
                    // distinguish by position.
                    TreeNodeKind::Elem { .. } => (1 << 40) | ((tree_idx as u64) << 20) | i as u64,
                },
            };
            let content = if want_content {
                vt.content(binding[*label])?
            } else {
                None
            };
            let order_key = match order_label {
                Some(olabel) => vt.content(binding[olabel])?,
                None => None,
            };
            out.push(RawPart {
                key: key.clone(),
                part_id,
                tree: part_tree(tree, binding[*label], *deep),
                content,
                order_key,
            });
        }
    }
    Ok(out)
}

/// Build the constructed element for one outer tree: the outer bound
/// node followed by its matched parts (or their aggregate). Pure — safe
/// to run per-shard once the parts table is frozen.
fn construct_one(
    dict: &xmlstore::Dictionary,
    tree: &Tree,
    bound: VNode,
    key: Option<&str>,
    parts: &HashMap<String, Vec<Part>>,
    agg: Option<(tax::ops::aggregate::AggFunc, &str)>,
    tag: &str,
) -> Tree {
    let mut result = Tree::new_elem(dict, tag);
    // `{$a}` — the outer bound node, with its subtree.
    let root = result.root();
    append_part(&mut result, root, tree, bound, true);

    let matched: &[Part] = key
        .and_then(|k| parts.get(k))
        .map(Vec::as_slice)
        .unwrap_or(&[]);
    if let Some((func, agg_tag)) = agg {
        let values: Vec<f64> = matched
            .iter()
            .filter_map(|p| p.content.as_deref())
            .filter_map(|c| c.trim().parse::<f64>().ok())
            .collect();
        if let Some(v) = tax::ops::aggregate::compute(func, matched.len(), &values) {
            result.add_elem_with_content(dict, root, agg_tag, tax::ops::aggregate::format_value(v));
        }
    } else {
        for part in matched {
            result.append_subtree(root, &part.tree, part.tree.root());
        }
    }
    result
}

/// Hash-partitioned [`stitch`]: the sharded-sink entry point.
///
/// Part extraction fans out over the inner trees with `par_map` (in-order
/// results), then a **sequential** merge applies the naive plan's
/// cross-tree duplicate elimination — so bucket contents and ranks are
/// identical to the serial pass. Outer trees are then routed to
/// `partitions` shards by an FNV-1a hash of their stitch key; each shard
/// constructs its result elements against the frozen parts table, and the
/// merge re-emits them ordered by **outer input position** — byte-identical
/// to the serial kernel. Returns the collection plus partition statistics
/// (outer trees per shard).
#[allow(clippy::too_many_arguments)]
pub(crate) fn stitch_sharded(
    store: &DocumentStore,
    outer: &Collection,
    outer_pattern: &PatternTree,
    outer_label: PatternNodeId,
    inner: &Collection,
    inner_pattern: &PatternTree,
    inner_label: PatternNodeId,
    inner_extract: &[(PatternNodeId, bool)],
    agg: Option<(tax::ops::aggregate::AggFunc, &str)>,
    order: Option<(PatternNodeId, tax::ops::groupby::Direction)>,
    tag: &str,
    opts: &ExecOptions,
    partitions: usize,
) -> Result<(Collection, ShardStats)> {
    use tax::ops::groupby::Direction;

    // Bucket the extracted parts by key value, with the naive plan's
    // "duplicate elimination based on articles" (Sec. 4.1): an article
    // joining the same key through several paths (two same-valued
    // authors, two same-institution authors) contributes its extracted
    // nodes once. Identity is the extracted stored node. Extraction is
    // per-tree-parallel; the dedup merge walks the in-order results
    // sequentially so ranks match the serial pass.
    let raw: Vec<Vec<RawPart>> = par_map(opts, inner, |tree_idx, tree| {
        extract_parts(
            store,
            tree_idx,
            tree,
            inner_pattern,
            inner_label,
            inner_extract,
            agg.is_some(),
            order.map(|(olabel, _)| olabel),
        )
    })?;
    let mut parts: HashMap<String, Vec<Part>> = HashMap::new();
    let mut seen: std::collections::HashSet<(String, u64)> = std::collections::HashSet::new();
    for rp in raw.into_iter().flatten() {
        if !seen.insert((rp.key.clone(), rp.part_id)) {
            continue;
        }
        let bucket = parts.entry(rp.key).or_default();
        let rank = bucket.len();
        bucket.push(Part {
            tree: rp.tree,
            content: rp.content,
            order_key: rp.order_key,
            rank,
        });
    }

    // Apply the user's ORDER BY within each key.
    if let Some((_, dir)) = order {
        for bucket in parts.values_mut() {
            bucket.sort_by(|a, b| {
                let ord =
                    tax::value::compare_opt_values(a.order_key.as_deref(), b.order_key.as_deref());
                let ord = match dir {
                    Direction::Ascending => ord,
                    Direction::Descending => ord.reverse(),
                };
                ord.then(a.rank.cmp(&b.rank))
            });
        }
    }

    // Each outer tree's bound node and stitch key, in outer order
    // (`None` for trees whose pattern does not match — they emit
    // nothing, exactly as in the serial pass).
    let keys: Vec<Option<(VNode, Option<String>)>> =
        par_map(opts, outer, |_, tree| -> tax::error::Result<_> {
            let vt = VTree::new(store, tree);
            let bindings = match_tree(store, tree, outer_pattern, false)?;
            match bindings.first() {
                Some(binding) => {
                    let bound = binding[outer_label];
                    Ok(Some((bound, vt.content(bound)?)))
                }
                None => Ok(None),
            }
        })?;

    let partitions = partitions.max(1).min(outer.len().max(1));
    if partitions <= 1 {
        let mut out = Vec::with_capacity(outer.len());
        for (oi, entry) in keys.iter().enumerate() {
            let Some((bound, key)) = entry else { continue };
            out.push(construct_one(
                store.dict(),
                &outer[oi],
                *bound,
                key.as_deref(),
                &parts,
                agg,
                tag,
            ));
        }
        return Ok((out, ShardStats::serial(outer.len())));
    }

    // Route keyed outer trees to shards by stitch-key hash.
    let mut shards: Vec<Vec<usize>> = (0..partitions).map(|_| Vec::new()).collect();
    for (oi, entry) in keys.iter().enumerate() {
        let Some((_, key)) = entry else { continue };
        let h = keyenc::hash_opt_str(key.as_deref());
        shards[keyenc::shard(h, partitions)].push(oi);
    }
    let sizes: Vec<usize> = shards.iter().map(Vec::len).collect();
    let per_shard: Vec<Vec<(usize, Tree)>> = par_map_owned(opts, shards, |_, shard| {
        Ok(shard
            .into_iter()
            .filter_map(|oi| {
                let (bound, key) = keys[oi].as_ref()?;
                Some((
                    oi,
                    construct_one(store.dict(), &outer[oi], *bound, key.as_deref(), &parts, agg, tag),
                ))
            })
            .collect())
    })?;

    // Order-restoring merge: scatter per-outer results back to outer
    // position, then emit in outer order.
    let mut slots: Vec<Option<Tree>> = (0..outer.len()).map(|_| None).collect();
    for shard in per_shard {
        for (oi, tree) in shard {
            slots[oi] = Some(tree);
        }
    }
    let out: Vec<Tree> = slots.into_iter().flatten().collect();
    Ok((out, ShardStats { partitions, sizes }))
}

/// A standalone tree for one extracted virtual node.
fn part_tree(src: &Tree, v: VNode, deep: bool) -> Tree {
    match v {
        VNode::Stored(e) => Tree::new_ref(e, deep),
        VNode::Arena(i) => match &src.node(i).kind {
            TreeNodeKind::Ref { node, .. } => Tree::new_ref(*node, deep),
            TreeNodeKind::Elem { tag, content } => {
                let mut t = Tree::new_elem_sym(*tag);
                if let Some(c) = content {
                    if let TreeNodeKind::Elem { content, .. } = &mut t.node_mut(0).kind {
                        *content = Some(*c);
                    }
                }
                if deep {
                    for &c in &src.node(i).children {
                        let root = t.root();
                        t.append_subtree(root, src, c);
                    }
                }
                t
            }
        },
    }
}

/// Append one extracted virtual node under `parent` of `dst`.
fn append_part(dst: &mut Tree, parent: usize, src: &Tree, v: VNode, deep: bool) {
    let part = part_tree(src, v, deep);
    dst.append_subtree(parent, &part, part.root());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PlanMode, TimberDb};
    use xmlstore::StoreOptions;

    const SAMPLE: &str = "<bib>\
        <article><title>Querying XML</title><author>Jack</author><author>John</author></article>\
        <article><title>XML and the Web</title><author>Jill</author><author>Jack</author></article>\
        <article><title>Hack HTML</title><author>John</author></article>\
    </bib>";

    fn db() -> TimberDb {
        TimberDb::load_xml(SAMPLE, &StoreOptions::in_memory()).unwrap()
    }

    const QUERY2: &str = r#"
        FOR $a IN distinct-values(document("bib.xml")//author)
        LET $t := document("bib.xml")//article[author = $a]/title
        RETURN <authorpubs> {$a} {$t} </authorpubs>
    "#;

    #[test]
    fn fig7_outer_collection() {
        // The outer selection/projection/dup-elim produces one
        // doc_root/author tree per distinct author (Fig. 7).
        let db = db();
        let (plan, _) = db.compile(QUERY2, PlanMode::Direct).unwrap();
        let Plan::StitchConstruct { outer, .. } = &plan else {
            panic!()
        };
        let c = eval(db.store(), outer).unwrap();
        assert_eq!(c.len(), 3);
        let names: Vec<String> = c
            .iter()
            .map(|t| {
                t.materialize(db.store())
                    .unwrap()
                    .child("author")
                    .unwrap()
                    .text()
            })
            .collect();
        assert_eq!(names, ["Jack", "John", "Jill"]);
    }

    #[test]
    fn fig8_join_collection() {
        // The LOJ produces one TAX_prod_root tree per (author, article)
        // join pair (Fig. 8): Jack×2, John×2, Jill×1 = 5.
        let db = db();
        let (plan, _) = db.compile(QUERY2, PlanMode::Direct).unwrap();
        let Plan::StitchConstruct {
            inner: Some(inner), ..
        } = &plan
        else {
            panic!()
        };
        let c = eval(db.store(), inner).unwrap();
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn query2_direct_equals_rewritten() {
        let db = db();
        let direct = db.query(QUERY2, PlanMode::Direct).unwrap();
        let grouped = db.query(QUERY2, PlanMode::GroupByRewrite).unwrap();
        assert!(grouped.rewritten);
        assert_eq!(
            direct.to_xml_on(db.store()).unwrap(),
            grouped.to_xml_on(db.store()).unwrap()
        );
    }

    #[test]
    fn count_query_values() {
        let db = db();
        let q = r#"
            FOR $a IN distinct-values(document("bib.xml")//author)
            LET $t := document("bib.xml")//article[author = $a]/title
            RETURN <authorpubs> {$a} {count($t)} </authorpubs>
        "#;
        for mode in [PlanMode::Direct, PlanMode::GroupByRewrite] {
            let r = db.query(q, mode).unwrap();
            let xml = r.to_xml_on(db.store()).unwrap();
            assert!(
                xml.contains("<authorpubs><author>Jack</author><count>2</count></authorpubs>"),
                "{mode:?}: {xml}"
            );
            assert!(
                xml.contains("<authorpubs><author>Jill</author><count>1</count></authorpubs>"),
                "{mode:?}: {xml}"
            );
        }
    }

    #[test]
    fn projection_only_query_evaluates() {
        let db = db();
        let q = r#"
            FOR $a IN distinct-values(document("bib.xml")//author)
            RETURN <row> {$a} </row>
        "#;
        let r = db.query(q, PlanMode::Direct).unwrap();
        let xml = r.to_xml_on(db.store()).unwrap();
        assert_eq!(
            xml,
            "<row><author>Jack</author></row>\n<row><author>John</author></row>\n<row><author>Jill</author></row>\n"
        );
    }

    #[test]
    fn empty_database_yields_empty_result() {
        let db = TimberDb::load_xml("<bib/>", &StoreOptions::in_memory()).unwrap();
        let r = db.query(QUERY2, PlanMode::Direct).unwrap();
        assert!(r.is_empty());
        let r = db.query(QUERY2, PlanMode::GroupByRewrite).unwrap();
        assert!(r.is_empty());
    }
}
