//! Query results: trees, timing, and I/O accounting.

use crate::error::Result;
use crate::metrics::PlanMetrics;
use std::time::Duration;
use tax::Collection;
use xmlstore::{DocumentStore, IoStats};

/// The outcome of one query evaluation.
#[derive(Debug)]
pub struct QueryResult {
    /// The output collection. Trees may still hold references into the
    /// store; render them with [`QueryResult::to_xml_on`].
    pub trees: Collection,
    /// Whether the GROUPBY rewrite produced the executed plan.
    pub rewritten: bool,
    /// Wall-clock evaluation time.
    pub elapsed: Duration,
    /// Buffer/disk traffic attributable to this evaluation.
    pub io: IoStats,
    /// Per-operator metrics, when the physical executor ran the plan
    /// (`None` under [`crate::ExecMode::Legacy`]).
    pub metrics: Option<PlanMetrics>,
}

impl QueryResult {
    /// Number of output trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Materialize every output tree as a DOM element ("data
    /// population").
    pub fn elements_on(&self, store: &DocumentStore) -> Result<Vec<xmlparse::Element>> {
        self.trees
            .iter()
            .map(|t| t.materialize(store).map_err(Into::into))
            .collect()
    }

    /// Serialize the whole result, one tree per line.
    pub fn to_xml_on(&self, store: &DocumentStore) -> Result<String> {
        let mut out = String::new();
        for e in self.elements_on(store)? {
            out.push_str(&xmlparse::serialize::element_to_string(&e));
            out.push('\n');
        }
        Ok(out)
    }
}
