//! Per-operator execution metrics for the physical executor.
//!
//! Every [`PhysOp`](crate::physical::PhysOp) in an executed plan records
//! how many trees flowed through it, how many batches it produced, how
//! long its own kernel work took, and the buffer-pool/disk traffic that
//! work caused. The per-operator records mirror the plan shape as a
//! [`PlanMetrics`] tree — the payload of `EXPLAIN ANALYZE`.

use std::fmt::Write;
use std::time::Duration;
use tax::exec::ShardStats;
use xmlstore::IoStats;

/// Execution metrics of one plan operator, with its children.
#[derive(Debug, Clone, Default)]
pub struct PlanMetrics {
    /// Operator description (the plan node's one-line rendering).
    pub op: String,
    /// Trees pulled from the operator's input(s). Zero for leaves.
    pub trees_in: usize,
    /// Trees this operator emitted.
    pub trees_out: usize,
    /// Output batches produced (blocking sinks also count their drain).
    pub batches: usize,
    /// Wall-clock time spent in this operator's own work, excluding
    /// time spent pulling from its inputs.
    pub elapsed: Duration,
    /// Buffer/disk traffic attributable to this operator's own work.
    pub io: IoStats,
    /// Deep `Tree` clones performed during this operator's own work (the
    /// clone budget: the zero-copy data path keeps this near zero for
    /// scan/group/aggregate pipelines).
    pub tree_clones: u64,
    /// Hash-partition statistics of a sharded blocking sink (`None` for
    /// streaming operators): partition count and per-shard input sizes,
    /// from which the skew factor is derived.
    pub shards: Option<ShardStats>,
    /// Metrics of the operator's input plans, in plan order.
    pub children: Vec<PlanMetrics>,
}

impl PlanMetrics {
    /// Indented rendering of the metrics tree, one operator per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        let _ = write!(
            out,
            "{pad}{} | in={} out={} batches={} time={:.3?} pages={} disk_reads={} clones={}",
            self.op,
            self.trees_in,
            self.trees_out,
            self.batches,
            self.elapsed,
            self.io.page_requests(),
            self.io.disk.reads,
            self.tree_clones,
        );
        if let Some(shards) = &self.shards {
            // A serial sink never split, and an empty input never
            // exercised the split — say so instead of rendering a
            // "measured" partition count and a perfect 1.00 skew.
            if shards.partitions <= 1 {
                let _ = write!(out, " parts=1 (serial) skew=-");
            } else {
                let _ = write!(out, " parts={}", shards.partitions);
                match shards.measured_skew() {
                    Some(skew) => {
                        let _ = write!(out, " skew={skew:.2}");
                    }
                    None => {
                        let _ = write!(out, " skew=-");
                    }
                }
            }
        }
        let _ = writeln!(out);
        for child in &self.children {
            child.render_into(out, depth + 1);
        }
    }

    /// Sum of `elapsed` over this node and all descendants.
    pub fn total_elapsed(&self) -> Duration {
        self.elapsed
            + self
                .children
                .iter()
                .map(PlanMetrics::total_elapsed)
                .sum::<Duration>()
    }

    /// Sum of page requests over this node and all descendants.
    pub fn total_page_requests(&self) -> u64 {
        self.io.page_requests()
            + self
                .children
                .iter()
                .map(PlanMetrics::total_page_requests)
                .sum::<u64>()
    }

    /// Sum of deep tree clones over this node and all descendants.
    pub fn total_tree_clones(&self) -> u64 {
        self.tree_clones
            + self
                .children
                .iter()
                .map(PlanMetrics::total_tree_clones)
                .sum::<u64>()
    }

    /// Number of operators in the tree (this node included).
    pub fn node_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(PlanMetrics::node_count)
            .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_indents_children() {
        let m = PlanMetrics {
            op: "Rename to <x>".into(),
            trees_in: 3,
            trees_out: 3,
            batches: 1,
            children: vec![PlanMetrics {
                op: "SelectDb".into(),
                trees_out: 3,
                batches: 1,
                ..Default::default()
            }],
            ..Default::default()
        };
        let text = m.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("Rename to <x> | in=3 out=3 batches=1"));
        assert!(lines[1].starts_with("  SelectDb | in=0 out=3"));
        assert!(lines[0].contains("pages=0"));
        assert_eq!(m.node_count(), 2);
    }

    #[test]
    fn render_includes_shard_stats_for_sinks() {
        let m = PlanMetrics {
            op: "GroupBy".into(),
            trees_in: 8,
            trees_out: 4,
            batches: 1,
            shards: Some(ShardStats {
                partitions: 4,
                sizes: vec![4, 2, 1, 1],
            }),
            ..Default::default()
        };
        let text = m.render();
        assert!(text.contains("parts=4 skew=2.00"), "{text}");
        // Streaming operators (shards: None) render without the fields.
        let s = PlanMetrics {
            op: "SelectDb".into(),
            ..Default::default()
        };
        assert!(!s.render().contains("parts="));
    }

    #[test]
    fn render_marks_serial_and_empty_shard_stats() {
        // Serial kernel: the sink never split, whatever the input size.
        let serial = PlanMetrics {
            op: "GroupBy".into(),
            shards: Some(ShardStats::serial(7)),
            ..Default::default()
        };
        assert!(
            serial.render().contains("parts=1 (serial) skew=-"),
            "{}",
            serial.render()
        );
        // Sharded sink over an empty input: partitions existed but no
        // item was routed, so no skew was measured.
        let empty = PlanMetrics {
            op: "GroupBy".into(),
            shards: Some(ShardStats {
                partitions: 4,
                sizes: vec![0, 0, 0, 0],
            }),
            ..Default::default()
        };
        assert!(
            empty.render().contains("parts=4 skew=-"),
            "{}",
            empty.render()
        );
    }
}
