//! TIMBER-style engine facade: load documents, run XQuery through either
//! evaluation plan, observe I/O.
//!
//! This crate ties the reproduction together the way Fig. 12 of
//! *Grouping in XML* draws the system: the query parser (`xquery`)
//! produces a TAX algebra expression; the "optimizer" optionally applies
//! the grouping rewrite; the evaluator ([`eval`]) interprets the plan
//! with the TAX operators (`tax`) over the paged store (`xmlstore`).
//!
//! # Example
//!
//! ```
//! use timber::{PlanMode, TimberDb};
//! use xmlstore::StoreOptions;
//!
//! let xml = "<bib>\
//!   <article><title>Q</title><author>Jack</author><author>Jill</author></article>\
//!   <article><title>R</title><author>Jack</author></article></bib>";
//! let db = TimberDb::load_xml(xml, &StoreOptions::in_memory()).unwrap();
//! let q = r#"
//!     FOR $a IN distinct-values(document("bib.xml")//author)
//!     RETURN <authorpubs>
//!       {$a}
//!       { FOR $b IN document("bib.xml")//article
//!         WHERE $a = $b/author
//!         RETURN $b/title }
//!     </authorpubs>"#;
//! let direct = db.query(q, PlanMode::Direct).unwrap();
//! let grouped = db.query(q, PlanMode::GroupByRewrite).unwrap();
//! assert_eq!(
//!     direct.to_xml_on(db.store()).unwrap(),
//!     grouped.to_xml_on(db.store()).unwrap(),
//! );
//! assert!(grouped.rewritten);
//! ```

pub mod error;
pub mod eval;
pub mod metrics;
pub mod physical;
pub mod result;

pub use error::{Result, TimberError};
pub use metrics::PlanMetrics;
pub use result::QueryResult;

use std::fmt::Write as _;
use xmlstore::{
    DocId, DocumentStore, FaultConfig, FaultStats, IoStats, RecoveryInfo, StoreOptions, WalStats,
};
use xquery::opt::OptTrace;
use xquery::Plan;

/// Which evaluation plan to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanMode {
    /// The naive join-based plan — the paper's "direct execution of the
    /// XQuery as written". No rewrite rules run.
    Direct,
    /// The optimized plan: the full rewrite-rule framework, headlined by
    /// the GROUPBY rewrite (falls back to the naive plan when no rule
    /// applies). Grouped aggregates fuse into the streaming `Rollup`
    /// kernel.
    GroupByRewrite,
    /// The optimized plan *without* rollup fusion
    /// ([`xquery::opt::Optimizer::materializing`]): grouped aggregates
    /// keep the materialized `GroupBy → Aggregate` pipeline. The
    /// reference mode for the rollup's differential tests and the
    /// `e2_count_groupby` benchmark key.
    GroupByMaterialized,
    /// Metric-driven plan choice: optimize as [`PlanMode::GroupByRewrite`],
    /// then sample the grouping input's first batch and fall back to the
    /// direct plan when nearly every witness carries a distinct
    /// grouping-basis key (grouping would build one group per input
    /// tree, so the rewrite's sharing buys nothing). The fallback is
    /// recorded in the trace as the pseudo-firing
    /// [`PLAN_CHOICE_DIRECT`].
    Auto,
}

/// Pseudo-rule name recorded in the [`OptTrace`] when [`PlanMode::Auto`]
/// abandons the grouped plan for the direct one, so `EXPLAIN ANALYZE`
/// shows why the executed plan differs from the optimizer's output.
pub const PLAN_CHOICE_DIRECT: &str = "plan-choice-direct";

/// Fewest sampled witnesses [`PlanMode::Auto`] needs before it trusts
/// the distinct-key ratio; below this the grouped plan always stands.
const MIN_PLAN_SAMPLE: usize = 8;

/// Which executor interprets the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// The batched pull-based operator pipeline ([`physical`]) — the
    /// default. Streams selection/projection/dup-elim in bounded
    /// batches and records per-operator metrics.
    #[default]
    Physical,
    /// The recursive match-arm interpreter ([`eval`]), kept for
    /// differential testing. Output is byte-identical to `Physical`.
    Legacy,
}

/// A loaded database plus the query pipeline.
pub struct TimberDb {
    store: DocumentStore,
    exec: tax::ExecOptions,
    exec_mode: ExecMode,
    batch_size: usize,
}

impl TimberDb {
    /// Parse and load an XML document.
    pub fn load_xml(xml: &str, opts: &StoreOptions) -> Result<Self> {
        Ok(TimberDb {
            store: DocumentStore::from_xml(xml, opts)?,
            exec: tax::ExecOptions::default(),
            exec_mode: ExecMode::default(),
            batch_size: physical::DEFAULT_BATCH_SIZE,
        })
    }

    /// Load an already parsed document.
    pub fn load_document(doc: &xmlparse::Document, opts: &StoreOptions) -> Result<Self> {
        Ok(TimberDb {
            store: DocumentStore::load(doc, opts)?,
            exec: tax::ExecOptions::default(),
            exec_mode: ExecMode::default(),
            batch_size: physical::DEFAULT_BATCH_SIZE,
        })
    }

    /// Create an empty database. With [`StoreOptions::with_durable`] and
    /// a path, every mutation is logged to a write-ahead log next to the
    /// page file and survives crashes.
    pub fn create(opts: &StoreOptions) -> Result<Self> {
        Ok(TimberDb {
            store: DocumentStore::create(opts)?,
            exec: tax::ExecOptions::default(),
            exec_mode: ExecMode::default(),
            batch_size: physical::DEFAULT_BATCH_SIZE,
        })
    }

    /// Reopen a durable database from its page file, running ARIES-style
    /// crash recovery over the log tail first. Only documents whose
    /// commit record reached the log survive; everything else is rolled
    /// back. [`TimberDb::recovery_info`] reports what recovery did.
    pub fn open(opts: &StoreOptions) -> Result<Self> {
        Ok(TimberDb {
            store: DocumentStore::open(opts)?,
            exec: tax::ExecOptions::default(),
            exec_mode: ExecMode::default(),
            batch_size: physical::DEFAULT_BATCH_SIZE,
        })
    }

    /// Parse and insert a document under the shared `doc_root`, as one
    /// logged transaction. Returns the new document's id.
    pub fn insert_xml(&mut self, xml: &str) -> Result<DocId> {
        Ok(self.store.insert_xml(xml)?)
    }

    /// Insert an already parsed document.
    pub fn insert_document(&mut self, doc: &xmlparse::Document) -> Result<DocId> {
        Ok(self.store.insert_document(doc)?)
    }

    /// Delete a document and reclaim its pages.
    pub fn delete_document(&mut self, doc: DocId) -> Result<()> {
        Ok(self.store.delete_document(doc)?)
    }

    /// Replace a document's content: delete + insert as two logged
    /// transactions. Returns the replacement's id.
    pub fn replace_xml(&mut self, doc: DocId, xml: &str) -> Result<DocId> {
        let parsed = xmlparse::parse_document(xml).map_err(xmlstore::StoreError::from)?;
        Ok(self.store.replace_document(doc, &parsed)?)
    }

    /// Flush all dirty pages, fsync the page file, and truncate the log
    /// to a fresh checkpoint record.
    pub fn checkpoint(&mut self) -> Result<()> {
        Ok(self.store.checkpoint()?)
    }

    /// The stored documents as `(doc_id, node_count)`, in insertion
    /// order.
    pub fn documents(&self) -> Vec<(DocId, u32)> {
        self.store.documents()
    }

    /// Write-ahead-log counters, when the store is durable.
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.store.wal_stats()
    }

    /// What crash recovery did when this database was opened; `None`
    /// for freshly created or bulk-loaded databases.
    pub fn recovery_info(&self) -> Option<RecoveryInfo> {
        self.store.recovery_info()
    }

    /// The underlying store (statistics, direct access).
    pub fn store(&self) -> &DocumentStore {
        &self.store
    }

    /// Worker threads used for operator evaluation (`0` acts as `1`).
    /// Parallel evaluation is deterministic: outputs are byte-identical
    /// to a single-threaded run.
    pub fn set_threads(&mut self, threads: usize) {
        self.exec = tax::ExecOptions::with_threads(threads);
    }

    /// The current worker-thread setting.
    pub fn threads(&self) -> usize {
        self.exec.threads
    }

    /// The execution options queries run with.
    pub fn exec_options(&self) -> tax::ExecOptions {
        self.exec
    }

    /// Which executor interprets plans.
    pub fn exec_mode(&self) -> ExecMode {
        self.exec_mode
    }

    /// Select the executor (physical pipeline or legacy interpreter).
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.exec_mode = mode;
    }

    /// Trees per batch in the physical executor (`0` acts as `1`).
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Set the physical executor's batch size.
    pub fn set_batch_size(&mut self, batch: usize) {
        self.batch_size = batch.max(1);
    }

    /// Compile a query to a logical plan under the given mode. Returns
    /// the plan and whether the grouping rewrite fired.
    pub fn compile(&self, query: &str, mode: PlanMode) -> Result<(Plan, bool)> {
        let (plan, rewritten, _) = self.compile_traced(query, mode)?;
        Ok((plan, rewritten))
    }

    /// [`TimberDb::compile`] plus the optimizer's rule-firing trace.
    /// `Direct` mode runs no rules (empty trace); `GroupByRewrite` runs
    /// the full [`xquery::opt`] rule set to fixpoint. The `rewritten`
    /// flag reports specifically whether the GROUPBY rewrite fired.
    pub fn compile_traced(&self, query: &str, mode: PlanMode) -> Result<(Plan, bool, OptTrace)> {
        let ast = xquery::parse_query(query)?;
        let naive = xquery::translate(&ast)?;
        Ok(match mode {
            PlanMode::Direct => (naive, false, OptTrace::default()),
            PlanMode::GroupByRewrite => {
                let (plan, trace) = xquery::opt::optimize(naive);
                let rewritten = trace.fired("groupby-rewrite");
                (plan, rewritten, trace)
            }
            PlanMode::GroupByMaterialized => {
                let (plan, trace) = xquery::opt::Optimizer::materializing().optimize(naive);
                let rewritten = trace.fired("groupby-rewrite");
                (plan, rewritten, trace)
            }
            PlanMode::Auto => {
                let (plan, mut trace) = xquery::opt::optimize(naive.clone());
                let rewritten = trace.fired("groupby-rewrite");
                if rewritten && self.grouping_is_degenerate(&plan)? {
                    trace.firings.push(xquery::opt::RuleFiring {
                        rule: PLAN_CHOICE_DIRECT,
                        pass: trace.passes,
                    });
                    (naive, false, trace)
                } else {
                    (plan, rewritten, trace)
                }
            }
        })
    }

    /// [`PlanMode::Auto`]'s sampling probe: pull the grouping input's
    /// first batch and measure its distinct-basis-key ratio. Degenerate
    /// means at least [`MIN_PLAN_SAMPLE`] sampled witnesses of which
    /// ≥ 90 % carry distinct keys — grouping would emit about one group
    /// per input tree.
    fn grouping_is_degenerate(&self, plan: &Plan) -> Result<bool> {
        let Some((input, pattern, basis)) = find_grouping(plan) else {
            return Ok(false);
        };
        let mut op = physical::build(&self.store, input, &self.exec, self.batch_size)?;
        let Some(batch) = op.next_batch()? else {
            return Ok(false);
        };
        let keys =
            tax::ops::groupby::witness_keys(&self.store, &batch, pattern, basis, &self.exec)?;
        if keys.len() < MIN_PLAN_SAMPLE {
            return Ok(false);
        }
        let distinct: std::collections::HashSet<_> = keys.iter().collect();
        Ok(distinct.len() * 10 >= keys.len() * 9)
    }

    /// Parse, plan, and evaluate a query.
    pub fn query(&self, query: &str, mode: PlanMode) -> Result<QueryResult> {
        let (plan, rewritten) = self.compile(query, mode)?;
        self.run_plan(&plan, rewritten)
    }

    /// Evaluate an already compiled plan with the configured executor.
    pub fn run_plan(&self, plan: &Plan, rewritten: bool) -> Result<QueryResult> {
        let start = std::time::Instant::now();
        let io_before = self.store.io_stats();
        let (trees, metrics) = match self.exec_mode {
            ExecMode::Physical => {
                let (trees, m) = physical::execute(&self.store, plan, &self.exec, self.batch_size)?;
                (trees, Some(m))
            }
            ExecMode::Legacy => (eval::eval_with(&self.store, plan, &self.exec)?, None),
        };
        let elapsed = start.elapsed();
        let io_after = self.store.io_stats();
        Ok(QueryResult {
            trees,
            rewritten,
            elapsed,
            io: diff_io(io_before, io_after),
            metrics,
        })
    }

    /// Render both plans for a query plus the optimizer's rule-firing
    /// trace — `EXPLAIN`.
    pub fn explain(&self, query: &str) -> Result<String> {
        let ast = xquery::parse_query(query)?;
        let naive = xquery::translate(&ast)?;
        let (opt, trace) = xquery::opt::optimize(naive.clone());
        let mut out = String::from("== direct plan ==\n");
        out.push_str(&naive.explain());
        out.push_str("\n== optimized plan ==\n");
        if trace.firings.is_empty() {
            out.push_str("(no rewrite rules fired; same as direct)\n");
        } else {
            out.push_str(&opt.explain());
        }
        out.push_str("\n== rewrite trace ==\n");
        out.push_str(&trace.render());
        Ok(out)
    }

    /// Compile and execute a query on the physical executor, returning
    /// the plan, the rule trace, the per-operator metrics tree, and the
    /// result — `EXPLAIN ANALYZE`. Always runs the physical pipeline
    /// (operator metrics are its instrumentation), regardless of the
    /// configured [`ExecMode`].
    pub fn explain_analyze(&self, query: &str, mode: PlanMode) -> Result<ExplainAnalysis> {
        let (plan, rewritten, trace) = self.compile_traced(query, mode)?;
        let start = std::time::Instant::now();
        let io_before = self.store.io_stats();
        let (trees, metrics) = physical::execute(&self.store, &plan, &self.exec, self.batch_size)?;
        let elapsed = start.elapsed();
        let io_after = self.store.io_stats();
        let result = QueryResult {
            trees,
            rewritten,
            elapsed,
            io: diff_io(io_before, io_after),
            metrics: Some(metrics.clone()),
        };
        Ok(ExplainAnalysis {
            mode,
            rewritten,
            plan,
            trace,
            metrics,
            result,
            batch_size: self.batch_size,
        })
    }

    /// Current I/O counters of the store.
    pub fn io_stats(&self) -> IoStats {
        self.store.io_stats()
    }

    /// Zero the I/O counters.
    pub fn reset_io_stats(&self) {
        self.store.reset_io_stats()
    }

    /// Drop all cached pages (cold-start measurements).
    pub fn clear_buffer_pool(&self) -> Result<()> {
        Ok(self.store.clear_buffer_pool()?)
    }

    /// Arm (or with `None` disarm) a deterministic fault schedule on the
    /// store's disk. With a schedule armed, queries either return correct
    /// results, absorb transient faults via retry, or fail with a typed
    /// [`TimberError`] — never a panic, never silent corruption.
    pub fn set_faults(&self, config: Option<FaultConfig>) -> Result<()> {
        Ok(self.store.inject_faults(config)?)
    }

    /// Counters from the armed fault schedule, if any.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.store.fault_stats()
    }
}

/// The payload of `EXPLAIN ANALYZE`: the executed plan, how it was
/// optimized, what every operator did, and the result itself.
pub struct ExplainAnalysis {
    /// The plan mode the query was compiled under.
    pub mode: PlanMode,
    /// Whether the GROUPBY rewrite produced the executed plan.
    pub rewritten: bool,
    /// The executed logical plan.
    pub plan: Plan,
    /// The optimizer's rule-firing trace.
    pub trace: OptTrace,
    /// Per-operator execution metrics, mirroring the plan shape.
    pub metrics: PlanMetrics,
    /// The query result (also carries the metrics).
    pub result: QueryResult,
    /// The batch size the physical pipeline ran with.
    pub batch_size: usize,
}

impl ExplainAnalysis {
    /// Human-readable report: plan, rule trace, per-operator metrics,
    /// and result totals.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let fired = if self.rewritten {
            ", groupby rewrite fired"
        } else {
            ""
        };
        let _ = writeln!(out, "== plan ({:?} mode{fired}) ==", self.mode);
        out.push_str(&self.plan.explain());
        out.push_str("\n== rewrite trace ==\n");
        out.push_str(&self.trace.render());
        let _ = writeln!(
            out,
            "\n== execution (physical, batch={}) ==",
            self.batch_size
        );
        out.push_str(&self.metrics.render());
        let _ = writeln!(
            out,
            "\n{} trees in {:.3?}; {} page requests, {} disk reads",
            self.result.len(),
            self.result.elapsed,
            self.result.io.page_requests(),
            self.result.io.disk.reads,
        );
        out
    }
}

/// The grouping node (`GroupBy` or `Rollup`) an optimized plan pivots
/// on, together with its input plan and grouping parameters. Walks the
/// unary spine of the pipeline shapes the optimizer emits.
fn find_grouping(
    plan: &Plan,
) -> Option<(
    &Plan,
    &tax::pattern::PatternTree,
    &[tax::ops::groupby::BasisItem],
)> {
    match plan {
        Plan::GroupBy {
            input,
            pattern,
            basis,
            ..
        }
        | Plan::Rollup {
            input,
            pattern,
            basis,
            ..
        }
        | Plan::Cube {
            input,
            pattern,
            basis,
            ..
        } => Some((input, pattern, basis)),
        Plan::Project { input, .. }
        | Plan::DupElim { input, .. }
        | Plan::Aggregate { input, .. }
        | Plan::Rename { input, .. } => find_grouping(input),
        // The composed lattice: every branch scans the same input, so
        // the first branch's grouping probe stands for all of them.
        Plan::Union { inputs } => inputs.first().and_then(find_grouping),
        _ => None,
    }
}

pub(crate) fn diff_io(before: IoStats, after: IoStats) -> IoStats {
    IoStats {
        buffer: xmlstore::buffer::BufferStats {
            hits: after.buffer.hits - before.buffer.hits,
            misses: after.buffer.misses - before.buffer.misses,
            evictions: after.buffer.evictions - before.buffer.evictions,
            writebacks: after.buffer.writebacks - before.buffer.writebacks,
            retries: after.buffer.retries - before.buffer.retries,
        },
        disk: xmlstore::storage::DiskStats {
            reads: after.disk.reads - before.disk.reads,
            writes: after.disk.writes - before.disk.writes,
        },
    }
}

pub(crate) fn add_io(a: IoStats, b: IoStats) -> IoStats {
    IoStats {
        buffer: xmlstore::buffer::BufferStats {
            hits: a.buffer.hits + b.buffer.hits,
            misses: a.buffer.misses + b.buffer.misses,
            evictions: a.buffer.evictions + b.buffer.evictions,
            writebacks: a.buffer.writebacks + b.buffer.writebacks,
            retries: a.buffer.retries + b.buffer.retries,
        },
        disk: xmlstore::storage::DiskStats {
            reads: a.disk.reads + b.disk.reads,
            writes: a.disk.writes + b.disk.writes,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "<bib>\
        <article><title>Querying XML</title><author>Jack</author><author>John</author></article>\
        <article><title>XML and the Web</title><author>Jill</author><author>Jack</author></article>\
        <article><title>Hack HTML</title><author>John</author></article>\
    </bib>";

    const QUERY1: &str = r#"
        FOR $a IN distinct-values(document("bib.xml")//author)
        RETURN <authorpubs>
          {$a}
          { FOR $b IN document("bib.xml")//article
            WHERE $a = $b/author
            RETURN $b/title }
        </authorpubs>
    "#;

    fn db() -> TimberDb {
        TimberDb::load_xml(SAMPLE, &StoreOptions::in_memory()).unwrap()
    }

    #[test]
    fn query1_direct_output() {
        let db = db();
        let r = db.query(QUERY1, PlanMode::Direct).unwrap();
        assert!(!r.rewritten);
        let xml = r.to_xml_on(db.store()).unwrap();
        // Jack authored two articles.
        assert!(
            xml.contains("<authorpubs><author>Jack</author><title>Querying XML</title><title>XML and the Web</title></authorpubs>"),
            "{xml}"
        );
        assert_eq!(r.trees.len(), 3); // Jack, John, Jill
    }

    #[test]
    fn query1_rewritten_output_identical() {
        let db = db();
        let direct = db.query(QUERY1, PlanMode::Direct).unwrap();
        let grouped = db.query(QUERY1, PlanMode::GroupByRewrite).unwrap();
        assert!(grouped.rewritten);
        assert_eq!(
            direct.to_xml_on(db.store()).unwrap(),
            grouped.to_xml_on(db.store()).unwrap()
        );
    }

    #[test]
    fn groupby_plan_does_less_io_for_count() {
        let db = db();
        let q = r#"
            FOR $a IN distinct-values(document("bib.xml")//author)
            LET $t := document("bib.xml")//article[author = $a]/title
            RETURN <authorpubs> {$a} {count($t)} </authorpubs>
        "#;
        let direct = db.query(q, PlanMode::Direct).unwrap();
        let grouped = db.query(q, PlanMode::GroupByRewrite).unwrap();
        assert_eq!(
            direct.to_xml_on(db.store()).unwrap(),
            grouped.to_xml_on(db.store()).unwrap()
        );
        assert!(
            grouped.io.page_requests() < direct.io.page_requests(),
            "groupby {} vs direct {}",
            grouped.io.page_requests(),
            direct.io.page_requests()
        );
    }

    const QUERY_COUNT: &str = r#"
        FOR $a IN distinct-values(document("bib.xml")//author)
        LET $t := document("bib.xml")//article[author = $a]/title
        RETURN <authorpubs> {$a} {count($t)} </authorpubs>
    "#;

    #[test]
    fn rollup_plan_matches_materialized_and_direct() {
        let db = db();
        let (plan, _, trace) = db
            .compile_traced(QUERY_COUNT, PlanMode::GroupByRewrite)
            .unwrap();
        assert!(trace.fired("rollup-fuse"), "{}", trace.render());
        assert!(plan.explain().contains("Rollup Count"));
        let (mat_plan, _, mat_trace) = db
            .compile_traced(QUERY_COUNT, PlanMode::GroupByMaterialized)
            .unwrap();
        assert!(!mat_trace.fired("rollup-fuse"));
        assert!(mat_plan.explain().contains("GroupBy"));
        let direct = db.query(QUERY_COUNT, PlanMode::Direct).unwrap();
        let rollup = db.query(QUERY_COUNT, PlanMode::GroupByRewrite).unwrap();
        let materialized = db
            .query(QUERY_COUNT, PlanMode::GroupByMaterialized)
            .unwrap();
        let expected = direct.to_xml_on(db.store()).unwrap();
        assert_eq!(rollup.to_xml_on(db.store()).unwrap(), expected);
        assert_eq!(materialized.to_xml_on(db.store()).unwrap(), expected);
    }

    #[test]
    fn auto_mode_falls_back_on_degenerate_grouping() {
        // Ten articles, every author unique: grouping emits one group
        // per article, so Auto should run the direct plan and say why.
        let mut xml = String::from("<bib>");
        for i in 0..10 {
            xml.push_str(&format!(
                "<article><title>T{i}</title><author>A{i}</author></article>"
            ));
        }
        xml.push_str("</bib>");
        let db = TimberDb::load_xml(&xml, &StoreOptions::in_memory()).unwrap();
        let (_, rewritten, trace) = db.compile_traced(QUERY_COUNT, PlanMode::Auto).unwrap();
        assert!(!rewritten);
        assert!(trace.fired(PLAN_CHOICE_DIRECT), "{}", trace.render());
        let auto = db.query(QUERY_COUNT, PlanMode::Auto).unwrap();
        let direct = db.query(QUERY_COUNT, PlanMode::Direct).unwrap();
        assert_eq!(
            auto.to_xml_on(db.store()).unwrap(),
            direct.to_xml_on(db.store()).unwrap()
        );
    }

    #[test]
    fn auto_mode_keeps_grouped_plan_when_keys_repeat() {
        // Twelve articles over three authors: plenty of sharing, the
        // grouped (rollup) plan stands.
        let mut xml = String::from("<bib>");
        for i in 0..12 {
            xml.push_str(&format!(
                "<article><title>T{i}</title><author>A{}</author></article>",
                i % 3
            ));
        }
        xml.push_str("</bib>");
        let shared = TimberDb::load_xml(&xml, &StoreOptions::in_memory()).unwrap();
        let (plan, rewritten, trace) = shared.compile_traced(QUERY_COUNT, PlanMode::Auto).unwrap();
        assert!(rewritten);
        assert!(!trace.fired(PLAN_CHOICE_DIRECT), "{}", trace.render());
        assert!(plan.explain().contains("Rollup"));
        // Small samples never trigger the fallback, even with unique
        // keys (the figure-6 database has only 5 witnesses).
        let small = db();
        let (_, rewritten, trace) = small.compile_traced(QUERY_COUNT, PlanMode::Auto).unwrap();
        assert!(rewritten);
        assert!(!trace.fired(PLAN_CHOICE_DIRECT), "{}", trace.render());
    }

    const QUERY_CUBE: &str = r#"
        FOR $b IN document("bib.xml")//article
        CUBE BY $b/journal, $b/year, $b/author
        RETURN <pubs> {count($b/title)} </pubs>
    "#;

    fn cube_db() -> TimberDb {
        let xml = "<bib>\
            <article><title>Querying XML</title><journal>TODS</journal><year>1999</year>\
                <author>Jack</author><author>John</author></article>\
            <article><title>XML and the Web</title><journal>TODS</journal><year>2001</year>\
                <author>Jill</author><author>Jack</author></article>\
            <article><title>Hack HTML</title><journal>WebDB</journal><year>2001</year>\
                <author>John</author></article>\
        </bib>";
        TimberDb::load_xml(xml, &StoreOptions::in_memory()).unwrap()
    }

    #[test]
    fn cube_query_fuses_to_one_scan_and_matches_the_composed_union() {
        let db = cube_db();
        let (plan, _, trace) = db
            .compile_traced(QUERY_CUBE, PlanMode::GroupByRewrite)
            .unwrap();
        assert!(trace.fired("cube-fuse"), "{}", trace.render());
        assert!(plan.explain().contains("Cube Count"), "{}", plan.explain());
        // The materializing optimizer keeps the composed per-level
        // union — the byte-identity reference.
        let (mat_plan, _, mat_trace) = db
            .compile_traced(QUERY_CUBE, PlanMode::GroupByMaterialized)
            .unwrap();
        assert!(!mat_trace.fired("cube-fuse"));
        assert!(mat_plan.explain().contains("Union (3 branches)"));
        let fused = db.query(QUERY_CUBE, PlanMode::GroupByRewrite).unwrap();
        let composed = db.query(QUERY_CUBE, PlanMode::GroupByMaterialized).unwrap();
        let fused_xml = fused.to_xml_on(db.store()).unwrap();
        assert!(fused_xml.contains("TAX_cube_level"), "{fused_xml}");
        assert_eq!(
            tax::ops::cube::strip_level_markers(&fused_xml),
            composed.to_xml_on(db.store()).unwrap()
        );
    }

    #[test]
    fn cube_query_agrees_across_executors_and_threads() {
        let mut db = cube_db();
        db.set_exec_mode(ExecMode::Legacy);
        let legacy = db.query(QUERY_CUBE, PlanMode::GroupByRewrite).unwrap();
        let expected = legacy.to_xml_on(db.store()).unwrap();
        db.set_exec_mode(ExecMode::Physical);
        for threads in [1, 4] {
            db.set_threads(threads);
            for batch in [1, 3, physical::DEFAULT_BATCH_SIZE] {
                db.set_batch_size(batch);
                let r = db.query(QUERY_CUBE, PlanMode::GroupByRewrite).unwrap();
                assert_eq!(
                    r.to_xml_on(db.store()).unwrap(),
                    expected,
                    "threads={threads} batch={batch}"
                );
            }
        }
        // The cube sink reports its partitions in EXPLAIN ANALYZE.
        db.set_threads(4);
        db.set_batch_size(physical::DEFAULT_BATCH_SIZE);
        let a = db
            .explain_analyze(QUERY_CUBE, PlanMode::GroupByRewrite)
            .unwrap();
        let text = a.render();
        assert!(
            text.lines()
                .any(|l| l.contains("Cube") && l.contains("parts=") && l.contains("skew=")),
            "{text}"
        );
    }

    #[test]
    fn explain_renders_both_plans() {
        let db = db();
        let text = db.explain(QUERY1).unwrap();
        assert!(text.contains("direct plan"));
        assert!(text.contains("LeftOuterJoinDb"));
        assert!(text.contains("GroupBy"));
        assert!(text.contains("rewrite trace"));
        assert!(text.contains("groupby-rewrite"));
    }

    #[test]
    fn legacy_and_physical_executors_agree() {
        let mut db = db();
        for mode in [PlanMode::Direct, PlanMode::GroupByRewrite] {
            db.set_exec_mode(ExecMode::Physical);
            let phys = db.query(QUERY1, mode).unwrap();
            assert!(phys.metrics.is_some(), "physical run records metrics");
            db.set_exec_mode(ExecMode::Legacy);
            let legacy = db.query(QUERY1, mode).unwrap();
            assert!(legacy.metrics.is_none());
            assert_eq!(
                phys.to_xml_on(db.store()).unwrap(),
                legacy.to_xml_on(db.store()).unwrap(),
                "{mode:?}"
            );
        }
    }

    #[test]
    fn explain_analyze_reports_per_operator_metrics() {
        let db = db();
        let a = db
            .explain_analyze(QUERY1, PlanMode::GroupByRewrite)
            .unwrap();
        assert!(a.rewritten);
        assert_eq!(a.metrics.trees_out, a.result.len());
        assert!(a.metrics.node_count() >= 4);
        let text = a.render();
        assert!(text.contains("== rewrite trace =="));
        assert!(text.contains("groupby-rewrite"));
        assert!(text.contains("== execution (physical, batch=256) =="));
        // Every operator line carries the counters.
        for line in text.lines().filter(|l| l.contains(" | in=")) {
            assert!(line.contains("out="), "{line}");
            assert!(line.contains("time="), "{line}");
            assert!(line.contains("pages="), "{line}");
        }
        // The blocking sinks report their partition count and skew,
        // even single-threaded (parts=1).
        assert!(
            text.lines()
                .any(|l| l.contains("GroupBy") && l.contains("parts=") && l.contains("skew=")),
            "{text}"
        );
    }

    #[test]
    fn explain_analyze_reports_partitions_under_threads() {
        let mut db = db();
        db.set_threads(4);
        let a = db.explain_analyze(QUERY1, PlanMode::Direct).unwrap();
        let text = a.render();
        // The direct plan's join and stitch sinks both report shards.
        let parts_lines: Vec<&str> = text.lines().filter(|l| l.contains("parts=")).collect();
        assert!(parts_lines.len() >= 2, "{text}");
        assert!(
            parts_lines.iter().any(|l| !l.contains("parts=1 ")),
            "expected a sink to split under threads=4: {text}"
        );
    }

    #[test]
    fn batch_size_does_not_change_output() {
        let mut db = db();
        let baseline = db.query(QUERY1, PlanMode::Direct).unwrap();
        let expected = baseline.to_xml_on(db.store()).unwrap();
        for batch in [1, 2, 7] {
            db.set_batch_size(batch);
            let r = db.query(QUERY1, PlanMode::Direct).unwrap();
            assert_eq!(r.to_xml_on(db.store()).unwrap(), expected, "batch={batch}");
        }
    }

    #[test]
    fn durable_db_mutates_queries_and_recovers() {
        let page =
            std::env::temp_dir().join(format!("timber_durable_test_{}.pages", std::process::id()));
        let wal = xmlstore::wal_path_for(&page);
        let _ = std::fs::remove_file(&page);
        let _ = std::fs::remove_file(&wal);
        let opts = StoreOptions::in_memory().with_path(&page).with_durable();
        let expected = {
            let mut db = TimberDb::create(&opts).unwrap();
            let d1 = db.insert_xml(SAMPLE).unwrap();
            let extra = db
                .insert_xml(
                    "<bib><article><title>Gone</title><author>Nobody</author></article></bib>",
                )
                .unwrap();
            db.delete_document(extra).unwrap();
            let d2 = db
                .replace_xml(d1, SAMPLE.replace("Hack HTML", "Fix HTML").as_str())
                .unwrap();
            assert_ne!(d1, d2);
            db.checkpoint().unwrap();
            assert_eq!(db.documents().len(), 1);
            assert!(db.wal_stats().unwrap().flushes >= 3);
            let r = db.query(QUERY1, PlanMode::GroupByRewrite).unwrap();
            r.to_xml_on(db.store()).unwrap()
        };
        assert!(expected.contains("Fix HTML"), "{expected}");
        // Reopen: recovery replays the log, queries answer identically.
        let db = TimberDb::open(&opts).unwrap();
        assert!(db.recovery_info().is_some());
        assert_eq!(db.documents().len(), 1);
        let r = db.query(QUERY1, PlanMode::GroupByRewrite).unwrap();
        assert_eq!(r.to_xml_on(db.store()).unwrap(), expected);
        let _ = std::fs::remove_file(&page);
        let _ = std::fs::remove_file(&wal);
    }

    #[test]
    fn optimizer_fuses_projection_only_queries() {
        let db = db();
        let q = r#"
            FOR $a IN distinct-values(document("bib.xml")//author)
            RETURN <row> {$a} </row>
        "#;
        let (plan, rewritten, trace) = db.compile_traced(q, PlanMode::GroupByRewrite).unwrap();
        assert!(!rewritten, "no groupby in a projection-only query");
        assert!(trace.fired("select-project-fuse"), "{}", trace.render());
        assert!(plan.explain().contains("SelectProject"));
        let direct = db.query(q, PlanMode::Direct).unwrap();
        let fused = db.query(q, PlanMode::GroupByRewrite).unwrap();
        assert_eq!(
            direct.to_xml_on(db.store()).unwrap(),
            fused.to_xml_on(db.store()).unwrap()
        );
    }
}
