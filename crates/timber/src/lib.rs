//! TIMBER-style engine facade: load documents, run XQuery through either
//! evaluation plan, observe I/O.
//!
//! This crate ties the reproduction together the way Fig. 12 of
//! *Grouping in XML* draws the system: the query parser (`xquery`)
//! produces a TAX algebra expression; the "optimizer" optionally applies
//! the grouping rewrite; the evaluator ([`eval`]) interprets the plan
//! with the TAX operators (`tax`) over the paged store (`xmlstore`).
//!
//! # Example
//!
//! ```
//! use timber::{PlanMode, TimberDb};
//! use xmlstore::StoreOptions;
//!
//! let xml = "<bib>\
//!   <article><title>Q</title><author>Jack</author><author>Jill</author></article>\
//!   <article><title>R</title><author>Jack</author></article></bib>";
//! let db = TimberDb::load_xml(xml, &StoreOptions::in_memory()).unwrap();
//! let q = r#"
//!     FOR $a IN distinct-values(document("bib.xml")//author)
//!     RETURN <authorpubs>
//!       {$a}
//!       { FOR $b IN document("bib.xml")//article
//!         WHERE $a = $b/author
//!         RETURN $b/title }
//!     </authorpubs>"#;
//! let direct = db.query(q, PlanMode::Direct).unwrap();
//! let grouped = db.query(q, PlanMode::GroupByRewrite).unwrap();
//! assert_eq!(
//!     direct.to_xml_on(db.store()).unwrap(),
//!     grouped.to_xml_on(db.store()).unwrap(),
//! );
//! assert!(grouped.rewritten);
//! ```

pub mod error;
pub mod eval;
pub mod result;

pub use error::{Result, TimberError};
pub use result::QueryResult;

use xmlstore::{DocumentStore, FaultConfig, FaultStats, IoStats, StoreOptions};
use xquery::Plan;

/// Which evaluation plan to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanMode {
    /// The naive join-based plan — the paper's "direct execution of the
    /// XQuery as written".
    Direct,
    /// The rewritten plan using the GROUPBY operator (falls back to the
    /// naive plan when the rewrite does not apply).
    GroupByRewrite,
}

/// A loaded database plus the query pipeline.
pub struct TimberDb {
    store: DocumentStore,
    exec: tax::ExecOptions,
}

impl TimberDb {
    /// Parse and load an XML document.
    pub fn load_xml(xml: &str, opts: &StoreOptions) -> Result<Self> {
        Ok(TimberDb {
            store: DocumentStore::from_xml(xml, opts)?,
            exec: tax::ExecOptions::default(),
        })
    }

    /// Load an already parsed document.
    pub fn load_document(doc: &xmlparse::Document, opts: &StoreOptions) -> Result<Self> {
        Ok(TimberDb {
            store: DocumentStore::load(doc, opts)?,
            exec: tax::ExecOptions::default(),
        })
    }

    /// The underlying store (statistics, direct access).
    pub fn store(&self) -> &DocumentStore {
        &self.store
    }

    /// Worker threads used for operator evaluation (`0` acts as `1`).
    /// Parallel evaluation is deterministic: outputs are byte-identical
    /// to a single-threaded run.
    pub fn set_threads(&mut self, threads: usize) {
        self.exec = tax::ExecOptions::with_threads(threads);
    }

    /// The current worker-thread setting.
    pub fn threads(&self) -> usize {
        self.exec.threads
    }

    /// The execution options queries run with.
    pub fn exec_options(&self) -> tax::ExecOptions {
        self.exec
    }

    /// Compile a query to a logical plan under the given mode. Returns
    /// the plan and whether the grouping rewrite fired.
    pub fn compile(&self, query: &str, mode: PlanMode) -> Result<(Plan, bool)> {
        let ast = xquery::parse_query(query)?;
        let naive = xquery::translate(&ast)?;
        Ok(match mode {
            PlanMode::Direct => (naive, false),
            PlanMode::GroupByRewrite => xquery::rewrite(naive),
        })
    }

    /// Parse, plan, and evaluate a query.
    pub fn query(&self, query: &str, mode: PlanMode) -> Result<QueryResult> {
        let (plan, rewritten) = self.compile(query, mode)?;
        self.run_plan(&plan, rewritten)
    }

    /// Evaluate an already compiled plan.
    pub fn run_plan(&self, plan: &Plan, rewritten: bool) -> Result<QueryResult> {
        let start = std::time::Instant::now();
        let io_before = self.store.io_stats();
        let trees = eval::eval_with(&self.store, plan, &self.exec)?;
        let elapsed = start.elapsed();
        let io_after = self.store.io_stats();
        Ok(QueryResult {
            trees,
            rewritten,
            elapsed,
            io: diff_io(io_before, io_after),
        })
    }

    /// Render both plans for a query — a poor man's `EXPLAIN`.
    pub fn explain(&self, query: &str) -> Result<String> {
        let (naive, _) = self.compile(query, PlanMode::Direct)?;
        let (opt, rewritten) = self.compile(query, PlanMode::GroupByRewrite)?;
        let mut out = String::from("== direct plan ==\n");
        out.push_str(&naive.explain());
        out.push_str("\n== optimized plan ==\n");
        if rewritten {
            out.push_str(&opt.explain());
        } else {
            out.push_str("(rewrite does not apply; same as direct)\n");
        }
        Ok(out)
    }

    /// Current I/O counters of the store.
    pub fn io_stats(&self) -> IoStats {
        self.store.io_stats()
    }

    /// Zero the I/O counters.
    pub fn reset_io_stats(&self) {
        self.store.reset_io_stats()
    }

    /// Drop all cached pages (cold-start measurements).
    pub fn clear_buffer_pool(&self) -> Result<()> {
        Ok(self.store.clear_buffer_pool()?)
    }

    /// Arm (or with `None` disarm) a deterministic fault schedule on the
    /// store's disk. With a schedule armed, queries either return correct
    /// results, absorb transient faults via retry, or fail with a typed
    /// [`TimberError`] — never a panic, never silent corruption.
    pub fn set_faults(&self, config: Option<FaultConfig>) -> Result<()> {
        Ok(self.store.inject_faults(config)?)
    }

    /// Counters from the armed fault schedule, if any.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.store.fault_stats()
    }
}

fn diff_io(before: IoStats, after: IoStats) -> IoStats {
    IoStats {
        buffer: xmlstore::buffer::BufferStats {
            hits: after.buffer.hits - before.buffer.hits,
            misses: after.buffer.misses - before.buffer.misses,
            evictions: after.buffer.evictions - before.buffer.evictions,
            writebacks: after.buffer.writebacks - before.buffer.writebacks,
            retries: after.buffer.retries - before.buffer.retries,
        },
        disk: xmlstore::storage::DiskStats {
            reads: after.disk.reads - before.disk.reads,
            writes: after.disk.writes - before.disk.writes,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "<bib>\
        <article><title>Querying XML</title><author>Jack</author><author>John</author></article>\
        <article><title>XML and the Web</title><author>Jill</author><author>Jack</author></article>\
        <article><title>Hack HTML</title><author>John</author></article>\
    </bib>";

    const QUERY1: &str = r#"
        FOR $a IN distinct-values(document("bib.xml")//author)
        RETURN <authorpubs>
          {$a}
          { FOR $b IN document("bib.xml")//article
            WHERE $a = $b/author
            RETURN $b/title }
        </authorpubs>
    "#;

    fn db() -> TimberDb {
        TimberDb::load_xml(SAMPLE, &StoreOptions::in_memory()).unwrap()
    }

    #[test]
    fn query1_direct_output() {
        let db = db();
        let r = db.query(QUERY1, PlanMode::Direct).unwrap();
        assert!(!r.rewritten);
        let xml = r.to_xml_on(db.store()).unwrap();
        // Jack authored two articles.
        assert!(
            xml.contains("<authorpubs><author>Jack</author><title>Querying XML</title><title>XML and the Web</title></authorpubs>"),
            "{xml}"
        );
        assert_eq!(r.trees.len(), 3); // Jack, John, Jill
    }

    #[test]
    fn query1_rewritten_output_identical() {
        let db = db();
        let direct = db.query(QUERY1, PlanMode::Direct).unwrap();
        let grouped = db.query(QUERY1, PlanMode::GroupByRewrite).unwrap();
        assert!(grouped.rewritten);
        assert_eq!(
            direct.to_xml_on(db.store()).unwrap(),
            grouped.to_xml_on(db.store()).unwrap()
        );
    }

    #[test]
    fn groupby_plan_does_less_io_for_count() {
        let db = db();
        let q = r#"
            FOR $a IN distinct-values(document("bib.xml")//author)
            LET $t := document("bib.xml")//article[author = $a]/title
            RETURN <authorpubs> {$a} {count($t)} </authorpubs>
        "#;
        let direct = db.query(q, PlanMode::Direct).unwrap();
        let grouped = db.query(q, PlanMode::GroupByRewrite).unwrap();
        assert_eq!(
            direct.to_xml_on(db.store()).unwrap(),
            grouped.to_xml_on(db.store()).unwrap()
        );
        assert!(
            grouped.io.page_requests() < direct.io.page_requests(),
            "groupby {} vs direct {}",
            grouped.io.page_requests(),
            direct.io.page_requests()
        );
    }

    #[test]
    fn explain_renders_both_plans() {
        let db = db();
        let text = db.explain(QUERY1).unwrap();
        assert!(text.contains("direct plan"));
        assert!(text.contains("LeftOuterJoinDb"));
        assert!(text.contains("GroupBy"));
    }
}
