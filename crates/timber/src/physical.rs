//! The physical executor: logical [`Plan`] trees → pull-based operator
//! pipelines.
//!
//! Each logical operator is built into a [`PhysOp`] — a batched iterator
//! over trees. Selection, projection, duplicate elimination, aggregation
//! and rename *stream*: they pull a bounded batch from their input, run
//! the corresponding `tax::ops` kernel on just that batch (keeping the
//! kernel's `par_map` parallelism inside batch production), and hand the
//! result upward, so pipelines of these operators never materialize the
//! whole intermediate collection. Grouping, the left outer join, and the
//! RETURN stitching are *blocking sinks*: they drain their input, run the
//! kernel once, and then emit the result in batches behind the same
//! trait.
//!
//! Every operator meters its own work — trees in/out, batches, wall
//! time, and the store's I/O delta — into a [`PlanMetrics`] tree; the
//! time spent pulling from an input is charged to the input, not the
//! consumer. Output order is deterministic and byte-identical to the
//! legacy interpreter in [`crate::eval`], which remains available for
//! differential testing.

use crate::error::Result;
use crate::metrics::PlanMetrics;
use std::collections::HashSet;
use std::time::{Duration, Instant};
use tax::exec::{par_map, ExecOptions, ShardStats};
use tax::matching::{match_db, Binding};
use tax::ops;
use tax::ops::aggregate::{AggFunc, UpdateSpec};
use tax::ops::dupelim::DupKey;
use tax::ops::groupby::{BasisItem, Direction, GroupOrder};
use tax::ops::project::ProjectItem;
use tax::ops::select::{select_project_bindings, witness_tree};
use tax::pattern::{PatternNodeId, PatternTree};
use tax::tree::{Collection, Tree};
use xmlstore::{DocumentStore, IoStats};
use xquery::Plan;

/// Default number of trees per batch.
pub const DEFAULT_BATCH_SIZE: usize = 256;

/// A physical operator: a batched pull iterator over trees.
pub trait PhysOp {
    /// The operator's display name (its logical plan line).
    fn name(&self) -> &str;

    /// Produce the next batch of output trees, or `None` when exhausted.
    /// Batches are never empty.
    fn next_batch(&mut self) -> Result<Option<Vec<Tree>>>;

    /// The metrics recorded so far, including the input operators'.
    fn metrics(&self) -> PlanMetrics;
}

/// Build the physical operator tree for a logical plan and drain it.
/// Returns the output collection and the per-operator metrics.
pub fn execute(
    store: &DocumentStore,
    plan: &Plan,
    opts: &ExecOptions,
    batch: usize,
) -> Result<(Collection, PlanMetrics)> {
    let mut root = build(store, plan, opts, batch)?;
    let mut out = Vec::new();
    while let Some(b) = root.next_batch()? {
        out.extend(b);
    }
    Ok((out, root.metrics()))
}

/// Build the physical operator for one logical plan node (recursively
/// building its inputs). `batch` of zero acts as one.
pub fn build<'a>(
    store: &'a DocumentStore,
    plan: &Plan,
    opts: &ExecOptions,
    batch: usize,
) -> Result<Box<dyn PhysOp + 'a>> {
    let batch = batch.max(1);
    let meter = Meter::new(op_label(plan));
    Ok(match plan {
        Plan::SelectDb { pattern, sl } => Box::new(SelectDbOp {
            store,
            pattern: pattern.clone(),
            sl: sl.clone(),
            opts: *opts,
            batch,
            bindings: None,
            pos: 0,
            meter,
        }),
        Plan::SelectProject { pattern, sl, pl } => Box::new(SelectProjectOp {
            store,
            pattern: pattern.clone(),
            sl: sl.clone(),
            pl: pl.clone(),
            opts: *opts,
            batch,
            bindings: None,
            pos: 0,
            meter,
        }),
        Plan::Project {
            input,
            pattern,
            pl,
            anchor_root,
        } => Box::new(ProjectOp {
            store,
            input: build(store, input, opts, batch)?,
            pattern: pattern.clone(),
            pl: pl.clone(),
            anchor_root: *anchor_root,
            meter,
        }),
        Plan::DupElim { input, pattern, by } => Box::new(DupElimOp {
            store,
            input: build(store, input, opts, batch)?,
            pattern: pattern.clone(),
            by: *by,
            opts: *opts,
            seen: HashSet::new(),
            meter,
        }),
        Plan::Aggregate {
            input,
            pattern,
            func,
            of,
            new_tag,
            spec,
        } => Box::new(AggregateOp {
            store,
            input: build(store, input, opts, batch)?,
            pattern: pattern.clone(),
            func: *func,
            of: *of,
            new_tag: new_tag.clone(),
            spec: *spec,
            opts: *opts,
            meter,
        }),
        Plan::Rename { input, tag } => Box::new(RenameOp {
            store,
            input: build(store, input, opts, batch)?,
            tag: tag.clone(),
            meter,
        }),
        Plan::GroupBy {
            input,
            pattern,
            basis,
            ordering,
        } => Box::new(GroupByOp {
            store,
            input: build(store, input, opts, batch)?,
            pattern: pattern.clone(),
            basis: basis.clone(),
            ordering: ordering.clone(),
            opts: *opts,
            batch,
            drained: None,
            meter,
        }),
        Plan::Rollup {
            input,
            pattern,
            basis,
            member_pattern,
            of,
            func,
            new_tag,
            flat,
        } => Box::new(RollupOp {
            store,
            input: build(store, input, opts, batch)?,
            pattern: pattern.clone(),
            basis: basis.clone(),
            member_pattern: member_pattern.clone(),
            of: *of,
            func: *func,
            new_tag: new_tag.clone(),
            shape: if *flat {
                ops::rollup::RollupShape::Flat
            } else {
                ops::rollup::RollupShape::Grouped
            },
            opts: *opts,
            batch,
            drained: None,
            meter,
        }),
        Plan::Union { inputs } => Box::new(UnionOp {
            inputs: inputs
                .iter()
                .map(|p| build(store, p, opts, batch))
                .collect::<Result<Vec<_>>>()?,
            pos: 0,
            meter,
        }),
        Plan::Cube {
            input,
            pattern,
            basis,
            member_pattern,
            of,
            func,
            new_tag,
        } => Box::new(CubeOp {
            store,
            input: build(store, input, opts, batch)?,
            pattern: pattern.clone(),
            basis: basis.clone(),
            member_pattern: member_pattern.clone(),
            of: *of,
            func: *func,
            new_tag: new_tag.clone(),
            opts: *opts,
            batch,
            drained: None,
            meter,
        }),
        Plan::LeftOuterJoinDb {
            left,
            left_pattern,
            left_label,
            right_pattern,
            right_label,
            right_sl,
            right_extract: _,
            order: _,
        } => Box::new(JoinOp {
            store,
            left: build(store, left, opts, batch)?,
            left_pattern: left_pattern.clone(),
            left_label: *left_label,
            right_pattern: right_pattern.clone(),
            right_label: *right_label,
            right_sl: right_sl.clone(),
            opts: *opts,
            batch,
            drained: None,
            meter,
        }),
        Plan::StitchConstruct {
            outer,
            outer_pattern,
            outer_label,
            inner,
            inner_pattern,
            inner_label,
            inner_extract,
            agg,
            order,
            tag,
        } => Box::new(StitchOp {
            store,
            outer: build(store, outer, opts, batch)?,
            outer_pattern: outer_pattern.clone(),
            outer_label: *outer_label,
            inner: match inner {
                Some(p) => Some(build(store, p, opts, batch)?),
                None => None,
            },
            inner_pattern: inner_pattern.clone(),
            inner_label: *inner_label,
            inner_extract: inner_extract.clone(),
            agg: agg.clone(),
            order: *order,
            tag: tag.clone(),
            opts: *opts,
            batch,
            drained: None,
            meter,
        }),
    })
}

/// The first line of the plan node's rendering — the operator label used
/// in metrics output.
fn op_label(plan: &Plan) -> String {
    plan.explain()
        .lines()
        .next()
        .unwrap_or("(plan)")
        .to_string()
}

/// Per-operator counters plus start/stop windows over the store's global
/// I/O statistics.
struct Meter {
    op: String,
    trees_in: usize,
    trees_out: usize,
    batches: usize,
    elapsed: Duration,
    io: IoStats,
    tree_clones: u64,
    shards: Option<ShardStats>,
}

impl Meter {
    fn new(op: String) -> Meter {
        Meter {
            op,
            trees_in: 0,
            trees_out: 0,
            batches: 0,
            elapsed: Duration::ZERO,
            io: IoStats::default(),
            tree_clones: 0,
            shards: None,
        }
    }

    /// Open a measurement window. Pair with [`Meter::stop`].
    fn start(&self, store: &DocumentStore) -> (Instant, IoStats, u64) {
        (Instant::now(), store.io_stats(), tax::tree::tree_clones())
    }

    /// Close a measurement window, accumulating elapsed time, the
    /// store's I/O delta, and the deep-tree-clone delta.
    fn stop(&mut self, store: &DocumentStore, window: (Instant, IoStats, u64)) {
        self.elapsed += window.0.elapsed();
        self.io = crate::add_io(self.io, crate::diff_io(window.1, store.io_stats()));
        self.tree_clones += tax::tree::tree_clones().saturating_sub(window.2);
    }

    /// Record one emitted batch of `n` trees.
    fn emitted(&mut self, n: usize) {
        self.batches += 1;
        self.trees_out += n;
    }

    fn metrics(&self, children: Vec<PlanMetrics>) -> PlanMetrics {
        PlanMetrics {
            op: self.op.clone(),
            trees_in: self.trees_in,
            trees_out: self.trees_out,
            batches: self.batches,
            elapsed: self.elapsed,
            io: self.io,
            tree_clones: self.tree_clones,
            shards: self.shards.clone(),
            children,
        }
    }
}

/// Streaming leaf: match the database once, then produce witness trees
/// one batch of bindings at a time.
struct SelectDbOp<'a> {
    store: &'a DocumentStore,
    pattern: PatternTree,
    sl: Vec<PatternNodeId>,
    opts: ExecOptions,
    batch: usize,
    bindings: Option<Vec<Binding>>,
    pos: usize,
    meter: Meter,
}

impl PhysOp for SelectDbOp<'_> {
    fn name(&self) -> &str {
        &self.meter.op
    }

    fn next_batch(&mut self) -> Result<Option<Vec<Tree>>> {
        let window = self.meter.start(self.store);
        if self.bindings.is_none() {
            self.bindings = Some(match_db(self.store, &self.pattern)?);
        }
        let bindings = self.bindings.as_ref().expect("bindings just set");
        if self.pos >= bindings.len() {
            self.meter.stop(self.store, window);
            return Ok(None);
        }
        let end = (self.pos + self.batch).min(bindings.len());
        let out = par_map(&self.opts, &bindings[self.pos..end], |_, b| {
            witness_tree(self.store, None, &self.pattern, b, &self.sl)
        })?;
        self.pos = end;
        self.meter.stop(self.store, window);
        self.meter.emitted(out.len());
        Ok(Some(out))
    }

    fn metrics(&self) -> PlanMetrics {
        self.meter.metrics(Vec::new())
    }
}

/// Streaming leaf for the fused select→project: one pattern match serves
/// both; each batch of bindings is projected as it is produced.
struct SelectProjectOp<'a> {
    store: &'a DocumentStore,
    pattern: PatternTree,
    sl: Vec<PatternNodeId>,
    pl: Vec<ProjectItem>,
    opts: ExecOptions,
    batch: usize,
    bindings: Option<Vec<Binding>>,
    pos: usize,
    meter: Meter,
}

impl PhysOp for SelectProjectOp<'_> {
    fn name(&self) -> &str {
        &self.meter.op
    }

    fn next_batch(&mut self) -> Result<Option<Vec<Tree>>> {
        let window = self.meter.start(self.store);
        if self.bindings.is_none() {
            self.bindings = Some(match_db(self.store, &self.pattern)?);
        }
        let bindings = self.bindings.as_ref().expect("bindings just set");
        // A batch of bindings can project to nothing; keep pulling until
        // some trees surface or the bindings run out.
        while self.pos < bindings.len() {
            let end = (self.pos + self.batch).min(bindings.len());
            let out = select_project_bindings(
                self.store,
                &self.pattern,
                &bindings[self.pos..end],
                &self.sl,
                &self.pl,
                &self.opts,
            )?;
            self.pos = end;
            if !out.is_empty() {
                self.meter.stop(self.store, window);
                self.meter.emitted(out.len());
                return Ok(Some(out));
            }
        }
        self.meter.stop(self.store, window);
        Ok(None)
    }

    fn metrics(&self) -> PlanMetrics {
        self.meter.metrics(Vec::new())
    }
}

/// Streaming projection: projects each input batch independently (trees
/// are independent under projection, so batching cannot change output).
struct ProjectOp<'a> {
    store: &'a DocumentStore,
    input: Box<dyn PhysOp + 'a>,
    pattern: PatternTree,
    pl: Vec<ProjectItem>,
    anchor_root: bool,
    meter: Meter,
}

impl PhysOp for ProjectOp<'_> {
    fn name(&self) -> &str {
        &self.meter.op
    }

    fn next_batch(&mut self) -> Result<Option<Vec<Tree>>> {
        loop {
            let Some(batch) = self.input.next_batch()? else {
                return Ok(None);
            };
            self.meter.trees_in += batch.len();
            let window = self.meter.start(self.store);
            let out = ops::project::project(
                self.store,
                &batch,
                &self.pattern,
                &self.pl,
                self.anchor_root,
            )?;
            self.meter.stop(self.store, window);
            if !out.is_empty() {
                self.meter.emitted(out.len());
                return Ok(Some(out));
            }
        }
    }

    fn metrics(&self) -> PlanMetrics {
        self.meter.metrics(vec![self.input.metrics()])
    }
}

/// Streaming duplicate elimination: key extraction runs per batch, the
/// seen-set persists across batches so the stream-wide output matches
/// the collection-at-once kernel exactly.
struct DupElimOp<'a> {
    store: &'a DocumentStore,
    input: Box<dyn PhysOp + 'a>,
    pattern: PatternTree,
    by: PatternNodeId,
    opts: ExecOptions,
    seen: HashSet<DupKey>,
    meter: Meter,
}

impl PhysOp for DupElimOp<'_> {
    fn name(&self) -> &str {
        &self.meter.op
    }

    fn next_batch(&mut self) -> Result<Option<Vec<Tree>>> {
        loop {
            let Some(batch) = self.input.next_batch()? else {
                return Ok(None);
            };
            self.meter.trees_in += batch.len();
            let window = self.meter.start(self.store);
            let keys =
                ops::dupelim::dup_keys(self.store, &batch, &self.pattern, self.by, &self.opts)?;
            let out: Vec<Tree> = batch
                .into_iter()
                .zip(keys)
                .filter_map(|(tree, key)| self.seen.insert(key).then_some(tree))
                .collect();
            self.meter.stop(self.store, window);
            if !out.is_empty() {
                self.meter.emitted(out.len());
                return Ok(Some(out));
            }
        }
    }

    fn metrics(&self) -> PlanMetrics {
        self.meter.metrics(vec![self.input.metrics()])
    }
}

/// Streaming aggregation: one output tree per input tree, batch by
/// batch.
struct AggregateOp<'a> {
    store: &'a DocumentStore,
    input: Box<dyn PhysOp + 'a>,
    pattern: PatternTree,
    func: AggFunc,
    of: PatternNodeId,
    new_tag: String,
    spec: UpdateSpec,
    opts: ExecOptions,
    meter: Meter,
}

impl PhysOp for AggregateOp<'_> {
    fn name(&self) -> &str {
        &self.meter.op
    }

    fn next_batch(&mut self) -> Result<Option<Vec<Tree>>> {
        let Some(batch) = self.input.next_batch()? else {
            return Ok(None);
        };
        self.meter.trees_in += batch.len();
        let window = self.meter.start(self.store);
        let out = ops::aggregate::aggregate_opts(
            self.store,
            batch,
            &self.pattern,
            self.func,
            self.of,
            &self.new_tag,
            self.spec,
            &self.opts,
        )?;
        self.meter.stop(self.store, window);
        self.meter.emitted(out.len());
        Ok(Some(out))
    }

    fn metrics(&self) -> PlanMetrics {
        self.meter.metrics(vec![self.input.metrics()])
    }
}

/// Streaming root rename: in-place, one output tree per input tree.
struct RenameOp<'a> {
    store: &'a DocumentStore,
    input: Box<dyn PhysOp + 'a>,
    tag: String,
    meter: Meter,
}

impl PhysOp for RenameOp<'_> {
    fn name(&self) -> &str {
        &self.meter.op
    }

    fn next_batch(&mut self) -> Result<Option<Vec<Tree>>> {
        let Some(batch) = self.input.next_batch()? else {
            return Ok(None);
        };
        self.meter.trees_in += batch.len();
        let window = self.meter.start(self.store);
        let out = ops::rename::rename_root(self.store.dict(), batch, &self.tag)?;
        self.meter.stop(self.store, window);
        self.meter.emitted(out.len());
        Ok(Some(out))
    }

    fn metrics(&self) -> PlanMetrics {
        self.meter.metrics(vec![self.input.metrics()])
    }
}

/// Blocking sink: grouping needs the whole input to form groups, so it
/// drains its input, runs the **sharded** kernel once (witnesses
/// hash-partitioned by grouping-basis key over `opts.threads` workers,
/// order-restoring merge; see [`ops::groupby::groupby_sharded`]), and
/// emits the grouped trees in batches.
struct GroupByOp<'a> {
    store: &'a DocumentStore,
    input: Box<dyn PhysOp + 'a>,
    pattern: PatternTree,
    basis: Vec<BasisItem>,
    ordering: Vec<GroupOrder>,
    opts: ExecOptions,
    batch: usize,
    drained: Option<std::vec::IntoIter<Tree>>,
    meter: Meter,
}

impl PhysOp for GroupByOp<'_> {
    fn name(&self) -> &str {
        &self.meter.op
    }

    fn next_batch(&mut self) -> Result<Option<Vec<Tree>>> {
        let iter = match self.drained.take() {
            Some(iter) => self.drained.insert(iter),
            None => {
                let mut all = Vec::new();
                while let Some(b) = self.input.next_batch()? {
                    self.meter.trees_in += b.len();
                    all.extend(b);
                }
                let window = self.meter.start(self.store);
                let (out, shards) = ops::groupby::groupby_sharded(
                    self.store,
                    &all,
                    &self.pattern,
                    &self.basis,
                    &self.ordering,
                    &self.opts,
                    self.opts.threads.max(1),
                )?;
                self.meter.stop(self.store, window);
                self.meter.shards = Some(shards);
                self.drained.insert(out.into_iter())
            }
        };
        emit_drained(iter, self.batch, &mut self.meter)
    }

    fn metrics(&self) -> PlanMetrics {
        self.meter.metrics(vec![self.input.metrics()])
    }
}

/// Blocking sink: the fused grouped aggregate. Like [`GroupByOp`] it
/// drains its input and hash-partitions witnesses by grouping-basis key
/// over `opts.threads` workers with an order-restoring merge — but the
/// kernel ([`ops::rollup::rollup_sharded`]) folds each tree's aggregate
/// contribution into running per-group accumulators instead of
/// materializing group trees, so rows in greatly exceed groups out.
struct RollupOp<'a> {
    store: &'a DocumentStore,
    input: Box<dyn PhysOp + 'a>,
    pattern: PatternTree,
    basis: Vec<BasisItem>,
    member_pattern: PatternTree,
    of: PatternNodeId,
    func: AggFunc,
    new_tag: String,
    shape: ops::rollup::RollupShape,
    opts: ExecOptions,
    batch: usize,
    drained: Option<std::vec::IntoIter<Tree>>,
    meter: Meter,
}

impl PhysOp for RollupOp<'_> {
    fn name(&self) -> &str {
        &self.meter.op
    }

    fn next_batch(&mut self) -> Result<Option<Vec<Tree>>> {
        let iter = match self.drained.take() {
            Some(iter) => self.drained.insert(iter),
            None => {
                let mut all = Vec::new();
                while let Some(b) = self.input.next_batch()? {
                    self.meter.trees_in += b.len();
                    all.extend(b);
                }
                let window = self.meter.start(self.store);
                let (out, shards) = ops::rollup::rollup_sharded(
                    self.store,
                    &all,
                    &self.pattern,
                    &self.basis,
                    &self.member_pattern,
                    self.of,
                    self.func,
                    &self.new_tag,
                    self.shape,
                    &self.opts,
                    self.opts.threads.max(1),
                )?;
                self.meter.stop(self.store, window);
                self.meter.shards = Some(shards);
                self.drained.insert(out.into_iter())
            }
        };
        emit_drained(iter, self.batch, &mut self.meter)
    }

    fn metrics(&self) -> PlanMetrics {
        self.meter.metrics(vec![self.input.metrics()])
    }
}

/// Streaming concatenation: drains its inputs left to right, passing
/// each child's batches through unchanged, so the output order is the
/// branch order (the composed cube plan relies on this — levels emit
/// coarsest first).
struct UnionOp<'a> {
    inputs: Vec<Box<dyn PhysOp + 'a>>,
    pos: usize,
    meter: Meter,
}

impl PhysOp for UnionOp<'_> {
    fn name(&self) -> &str {
        &self.meter.op
    }

    fn next_batch(&mut self) -> Result<Option<Vec<Tree>>> {
        while self.pos < self.inputs.len() {
            if let Some(batch) = self.inputs[self.pos].next_batch()? {
                self.meter.trees_in += batch.len();
                self.meter.emitted(batch.len());
                return Ok(Some(batch));
            }
            self.pos += 1;
        }
        Ok(None)
    }

    fn metrics(&self) -> PlanMetrics {
        self.meter
            .metrics(self.inputs.iter().map(|i| i.metrics()).collect())
    }
}

/// Blocking sink: the one-scan grouping lattice. Like [`RollupOp`] it
/// drains its input and folds witness contributions into per-group
/// accumulators — but for **every prefix level** of the basis at once,
/// so one pass replaces one rollup per level. Witnesses are
/// hash-partitioned by their *coarsest* key component over
/// `opts.threads` workers (every prefix group of a witness lives in one
/// shard; see [`ops::cube::cube_sharded`]), with an order-restoring
/// merge that emits levels coarsest first.
struct CubeOp<'a> {
    store: &'a DocumentStore,
    input: Box<dyn PhysOp + 'a>,
    pattern: PatternTree,
    basis: Vec<BasisItem>,
    member_pattern: PatternTree,
    of: PatternNodeId,
    func: AggFunc,
    new_tag: String,
    opts: ExecOptions,
    batch: usize,
    drained: Option<std::vec::IntoIter<Tree>>,
    meter: Meter,
}

impl PhysOp for CubeOp<'_> {
    fn name(&self) -> &str {
        &self.meter.op
    }

    fn next_batch(&mut self) -> Result<Option<Vec<Tree>>> {
        let iter = match self.drained.take() {
            Some(iter) => self.drained.insert(iter),
            None => {
                let mut all = Vec::new();
                while let Some(b) = self.input.next_batch()? {
                    self.meter.trees_in += b.len();
                    all.extend(b);
                }
                let window = self.meter.start(self.store);
                let (out, shards) = ops::cube::cube_sharded(
                    self.store,
                    &all,
                    &self.pattern,
                    &self.basis,
                    &self.member_pattern,
                    self.of,
                    self.func,
                    &self.new_tag,
                    &self.opts,
                    self.opts.threads.max(1),
                )?;
                self.meter.stop(self.store, window);
                self.meter.shards = Some(shards);
                self.drained.insert(out.into_iter())
            }
        };
        emit_drained(iter, self.batch, &mut self.meter)
    }

    fn metrics(&self) -> PlanMetrics {
        self.meter.metrics(vec![self.input.metrics()])
    }
}

/// Blocking sink: the naive plan's left outer join against the stored
/// database, left trees hash-partitioned by join key over `opts.threads`
/// workers (see [`ops::join::left_outer_join_db_sharded`]).
struct JoinOp<'a> {
    store: &'a DocumentStore,
    left: Box<dyn PhysOp + 'a>,
    left_pattern: PatternTree,
    left_label: PatternNodeId,
    right_pattern: PatternTree,
    right_label: PatternNodeId,
    right_sl: Vec<PatternNodeId>,
    opts: ExecOptions,
    batch: usize,
    drained: Option<std::vec::IntoIter<Tree>>,
    meter: Meter,
}

impl PhysOp for JoinOp<'_> {
    fn name(&self) -> &str {
        &self.meter.op
    }

    fn next_batch(&mut self) -> Result<Option<Vec<Tree>>> {
        let iter = match self.drained.take() {
            Some(iter) => self.drained.insert(iter),
            None => {
                let mut all = Vec::new();
                while let Some(b) = self.left.next_batch()? {
                    self.meter.trees_in += b.len();
                    all.extend(b);
                }
                let window = self.meter.start(self.store);
                let (out, shards) = ops::join::left_outer_join_db_sharded(
                    self.store,
                    &all,
                    &self.left_pattern,
                    self.left_label,
                    &self.right_pattern,
                    self.right_label,
                    &self.right_sl,
                    &self.opts,
                    self.opts.threads.max(1),
                )?;
                self.meter.stop(self.store, window);
                self.meter.shards = Some(shards);
                self.drained.insert(out.into_iter())
            }
        };
        emit_drained(iter, self.batch, &mut self.meter)
    }

    fn metrics(&self) -> PlanMetrics {
        self.meter.metrics(vec![self.left.metrics()])
    }
}

/// Blocking sink: the RETURN stitching pairs every outer tree with all
/// inner parts sharing its key, so both inputs drain fully first; outer
/// trees are hash-partitioned by stitch key over `opts.threads` workers
/// (see [`crate::eval::stitch_sharded`]).
struct StitchOp<'a> {
    store: &'a DocumentStore,
    outer: Box<dyn PhysOp + 'a>,
    outer_pattern: PatternTree,
    outer_label: PatternNodeId,
    inner: Option<Box<dyn PhysOp + 'a>>,
    inner_pattern: PatternTree,
    inner_label: PatternNodeId,
    inner_extract: Vec<(PatternNodeId, bool)>,
    agg: Option<(AggFunc, String)>,
    order: Option<(PatternNodeId, Direction)>,
    tag: String,
    opts: ExecOptions,
    batch: usize,
    drained: Option<std::vec::IntoIter<Tree>>,
    meter: Meter,
}

impl PhysOp for StitchOp<'_> {
    fn name(&self) -> &str {
        &self.meter.op
    }

    fn next_batch(&mut self) -> Result<Option<Vec<Tree>>> {
        let iter = match self.drained.take() {
            Some(iter) => self.drained.insert(iter),
            None => {
                let mut outer_c = Vec::new();
                while let Some(b) = self.outer.next_batch()? {
                    self.meter.trees_in += b.len();
                    outer_c.extend(b);
                }
                let mut inner_c = Vec::new();
                if let Some(inner) = self.inner.as_mut() {
                    while let Some(b) = inner.next_batch()? {
                        self.meter.trees_in += b.len();
                        inner_c.extend(b);
                    }
                }
                let window = self.meter.start(self.store);
                let (out, shards) = crate::eval::stitch_sharded(
                    self.store,
                    &outer_c,
                    &self.outer_pattern,
                    self.outer_label,
                    &inner_c,
                    &self.inner_pattern,
                    self.inner_label,
                    &self.inner_extract,
                    self.agg.as_ref().map(|(f, t)| (*f, t.as_str())),
                    self.order,
                    &self.tag,
                    &self.opts,
                    self.opts.threads.max(1),
                )?;
                self.meter.stop(self.store, window);
                self.meter.shards = Some(shards);
                self.drained.insert(out.into_iter())
            }
        };
        emit_drained(iter, self.batch, &mut self.meter)
    }

    fn metrics(&self) -> PlanMetrics {
        let mut children = vec![self.outer.metrics()];
        if let Some(inner) = &self.inner {
            children.push(inner.metrics());
        }
        self.meter.metrics(children)
    }
}

/// Emit the next batch from a sink's drained output.
fn emit_drained(
    iter: &mut std::vec::IntoIter<Tree>,
    batch: usize,
    meter: &mut Meter,
) -> Result<Option<Vec<Tree>>> {
    let out: Vec<Tree> = iter.by_ref().take(batch).collect();
    if out.is_empty() {
        Ok(None)
    } else {
        meter.emitted(out.len());
        Ok(Some(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PlanMode, TimberDb};
    use xmlstore::StoreOptions;

    const SAMPLE: &str = "<bib>\
        <article><title>Querying XML</title><author>Jack</author><author>John</author></article>\
        <article><title>XML and the Web</title><author>Jill</author><author>Jack</author></article>\
        <article><title>Hack HTML</title><author>John</author></article>\
    </bib>";

    const QUERY1: &str = r#"
        FOR $a IN distinct-values(document("bib.xml")//author)
        RETURN <authorpubs>
          {$a}
          { FOR $b IN document("bib.xml")//article
            WHERE $a = $b/author
            RETURN $b/title }
        </authorpubs>
    "#;

    fn db() -> TimberDb {
        TimberDb::load_xml(SAMPLE, &StoreOptions::in_memory()).unwrap()
    }

    fn run_both(db: &TimberDb, plan: &Plan, batch: usize) -> (String, String, PlanMetrics) {
        let opts = db.exec_options();
        let legacy = crate::eval::eval_with(db.store(), plan, &opts).unwrap();
        let (phys, metrics) = execute(db.store(), plan, &opts, batch).unwrap();
        let to_xml = |c: &Collection| {
            c.iter()
                .map(|t| {
                    xmlparse::serialize::element_to_string(&t.materialize(db.store()).unwrap())
                })
                .collect::<Vec<_>>()
                .join("\n")
        };
        (to_xml(&legacy), to_xml(&phys), metrics)
    }

    #[test]
    fn physical_matches_legacy_at_every_batch_size() {
        let db = db();
        for mode in [PlanMode::Direct, PlanMode::GroupByRewrite] {
            let (plan, _) = db.compile(QUERY1, mode).unwrap();
            for batch in [1, 2, 3, DEFAULT_BATCH_SIZE] {
                let (legacy, phys, _) = run_both(&db, &plan, batch);
                assert_eq!(legacy, phys, "{mode:?} batch={batch}");
            }
        }
    }

    #[test]
    fn streaming_select_batches_bounded() {
        let db = db();
        let (plan, _) = db.compile(QUERY1, PlanMode::Direct).unwrap();
        let Plan::StitchConstruct { outer, .. } = &plan else {
            panic!()
        };
        // The outer pipeline ends in dup-elim over 5 author bindings.
        let (_, metrics) = execute(db.store(), outer, &db.exec_options(), 2).unwrap();
        assert_eq!(metrics.trees_out, 3); // Jack, John, Jill
                                          // The select leaf produced its 5 witnesses in ceil(5/2) batches.
        let mut leaf = &metrics;
        while !leaf.children.is_empty() {
            leaf = &leaf.children[0];
        }
        assert!(leaf.op.starts_with("SelectDb"), "{}", leaf.op);
        assert_eq!(leaf.trees_out, 5);
        assert_eq!(leaf.batches, 3);
    }

    #[test]
    fn dupelim_seen_set_spans_batches() {
        let db = db();
        let (plan, _) = db.compile(QUERY1, PlanMode::Direct).unwrap();
        let Plan::StitchConstruct { outer, .. } = &plan else {
            panic!()
        };
        // Batch size 1: each author binding arrives alone; duplicates
        // (Jack, John appear twice) must still be dropped globally.
        let (trees, _) = execute(db.store(), outer, &db.exec_options(), 1).unwrap();
        assert_eq!(trees.len(), 3);
    }

    #[test]
    fn metrics_cover_every_operator() {
        let db = db();
        let (plan, _) = db.compile(QUERY1, PlanMode::GroupByRewrite).unwrap();
        let (trees, metrics) = execute(db.store(), &plan, &db.exec_options(), 8).unwrap();
        assert_eq!(metrics.trees_out, trees.len());
        // Every plan node has a metrics node with a recorded batch count.
        fn check(m: &PlanMetrics) -> usize {
            assert!(!m.op.is_empty());
            assert!(m.trees_out == 0 || m.batches > 0, "{}", m.op);
            1 + m.children.iter().map(check).sum::<usize>()
        }
        let nodes = check(&metrics);
        assert_eq!(nodes, metrics.node_count());
        assert!(nodes >= 4, "expected a multi-operator plan, got {nodes}");
        // The grouped plan runs entirely over the columnar label region:
        // tag tests, grouping keys, and counts never touch a data page.
        assert_eq!(metrics.total_page_requests(), 0);
    }

    #[test]
    fn sharded_sinks_match_serial_and_report_partitions() {
        let db = db();
        let to_xml = |c: &Collection| {
            c.iter()
                .map(|t| {
                    xmlparse::serialize::element_to_string(&t.materialize(db.store()).unwrap())
                })
                .collect::<Vec<_>>()
                .join("\n")
        };
        fn sink_stats(m: &PlanMetrics, out: &mut Vec<ShardStats>) {
            if let Some(s) = &m.shards {
                out.push(s.clone());
            }
            for c in &m.children {
                sink_stats(c, out);
            }
        }
        for mode in [PlanMode::Direct, PlanMode::GroupByRewrite] {
            let (plan, _) = db.compile(QUERY1, mode).unwrap();
            let (serial, serial_metrics) =
                execute(db.store(), &plan, &ExecOptions::sequential(), 3).unwrap();
            let serial_xml = to_xml(&serial);
            // At threads=1 the sinks still report their (single) partition.
            let mut stats = Vec::new();
            sink_stats(&serial_metrics, &mut stats);
            assert!(!stats.is_empty(), "{mode:?}: no sink reported partitions");
            assert!(stats.iter().all(|s| s.partitions == 1));
            for threads in [2, 4, 8] {
                let opts = ExecOptions::with_threads(threads);
                let (phys, metrics) = execute(db.store(), &plan, &opts, 3).unwrap();
                assert_eq!(serial_xml, to_xml(&phys), "{mode:?} threads={threads}");
                let mut stats = Vec::new();
                sink_stats(&metrics, &mut stats);
                assert!(!stats.is_empty(), "{mode:?}: no sink reported partitions");
                for s in &stats {
                    assert!(s.partitions >= 1 && s.partitions <= threads, "{s:?}");
                    assert_eq!(s.sizes.iter().sum::<usize>(), s.total());
                    assert!(s.skew() >= 1.0, "{s:?}");
                }
                // With a handful of distinct keys and >1 requested
                // partitions, at least one sink actually splits.
                assert!(
                    stats.iter().any(|s| s.partitions > 1),
                    "{mode:?} threads={threads}: {stats:?}"
                );
            }
        }
    }

    #[test]
    fn blocking_sinks_emit_in_batches() {
        let db = db();
        let (plan, _) = db.compile(QUERY1, PlanMode::Direct).unwrap();
        let opts = db.exec_options();
        let mut root = build(db.store(), &plan, &opts, 2).unwrap();
        let mut sizes = Vec::new();
        while let Some(b) = root.next_batch().unwrap() {
            assert!(!b.is_empty());
            sizes.push(b.len());
        }
        // 3 authorpubs trees in batches of ≤ 2.
        assert_eq!(sizes.iter().sum::<usize>(), 3);
        assert!(sizes.iter().all(|&s| s <= 2));
        assert!(sizes.len() >= 2);
    }
}
