//! Engine-level errors.

use std::fmt;

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, TimberError>;

/// Any failure surfaced by the engine.
#[derive(Debug)]
pub enum TimberError {
    /// Storage failure.
    Store(xmlstore::StoreError),
    /// Query parsing / translation failure.
    Query(xquery::QueryError),
    /// Algebra evaluation failure.
    Algebra(tax::Error),
}

impl fmt::Display for TimberError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimberError::Store(e) => write!(f, "{e}"),
            TimberError::Query(e) => write!(f, "{e}"),
            TimberError::Algebra(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TimberError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TimberError::Store(e) => Some(e),
            TimberError::Query(e) => Some(e),
            TimberError::Algebra(e) => Some(e),
        }
    }
}

impl From<xmlstore::StoreError> for TimberError {
    fn from(e: xmlstore::StoreError) -> Self {
        TimberError::Store(e)
    }
}

impl From<xquery::QueryError> for TimberError {
    fn from(e: xquery::QueryError) -> Self {
        TimberError::Query(e)
    }
}

impl From<tax::Error> for TimberError {
    fn from(e: tax::Error) -> Self {
        TimberError::Algebra(e)
    }
}
