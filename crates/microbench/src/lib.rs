//! Minimal wall-clock benchmark harness.
//!
//! The workspace builds offline, so the external `criterion` crate is
//! unavailable; this crate provides the slice of its API the benches
//! use — [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`],
//! [`Throughput`], [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — backed by a simple measure-and-report
//! loop: one warm-up run per benchmark, then `sample_size` timed runs,
//! reporting min/median/mean and optional throughput to stdout.
//!
//! Environment knobs:
//!
//! * `MICROBENCH_SAMPLES=N` overrides every group's sample size (use
//!   `MICROBENCH_SAMPLES=1` for a smoke run).

use std::time::{Duration, Instant};

/// Work-rate annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Input elements processed per iteration.
    Elements(u64),
    /// Input bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark's identity: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a parameter axis, e.g. `BenchmarkId::new("identifier", 500)`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self, group: &str) -> String {
        match &self.parameter {
            Some(p) => format!("{group}/{}/{p}", self.function),
            None => format!("{group}/{}", self.function),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId {
            function: function.to_owned(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        BenchmarkId {
            function,
            parameter: None,
        }
    }
}

/// Top-level harness state; create one per bench binary via
/// [`criterion_group!`].
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }
}

/// A named set of benchmarks sharing sample-count and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed runs per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate subsequent benchmarks with a work rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a benchmark with no separate input value.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.effective_samples());
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.effective_samples());
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    /// Close the group (prints a trailing newline for readability).
    pub fn finish(self) {
        println!();
    }

    fn effective_samples(&self) -> usize {
        std::env::var("MICROBENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(self.sample_size)
    }

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let mut sorted = b.samples.clone();
        if sorted.is_empty() {
            println!("{:<52} (no samples)", id.render(&self.name));
            return;
        }
        sorted.sort();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let total: Duration = sorted.iter().sum();
        let mean = total / sorted.len() as u32;
        let mut line = format!(
            "{:<52} time: [min {:>9}  med {:>9}  mean {:>9}]  ({} samples)",
            id.render(&self.name),
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
            sorted.len(),
        );
        if let Some(tp) = self.throughput {
            let per_sec = |units: u64| units as f64 / median.as_secs_f64().max(1e-12);
            match tp {
                Throughput::Elements(n) => {
                    line.push_str(&format!("  {}/s", fmt_rate(per_sec(n), "elem")));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!("  {}/s", fmt_rate(per_sec(n), "B")));
                }
            }
        }
        println!("{line}");
    }
}

/// Times the closure handed to [`BenchmarkGroup`] benchmarks.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            samples: Vec::with_capacity(sample_size),
        }
    }

    /// Run the routine once untimed (warm-up), then `sample_size` timed
    /// runs. The routine's result is passed through `black_box` so the
    /// optimizer cannot discard the work.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Median of the recorded samples (used by tests and thread sweeps).
    pub fn median(&self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        Some(sorted[sorted.len() / 2])
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3}s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn fmt_rate(rate: f64, unit: &str) -> String {
    if rate >= 1e9 {
        format!("{:.2} G{unit}", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M{unit}", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} K{unit}", rate / 1e3)
    } else {
        format!("{rate:.2} {unit}")
    }
}

/// Define a function running a list of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define the bench binary's `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_sample_count() {
        let mut b = Bencher::new(5);
        let mut runs = 0u32;
        b.iter(|| runs += 1);
        // warm-up + 5 samples
        assert_eq!(runs, 6);
        assert_eq!(b.samples.len(), 5);
        assert!(b.median().is_some());
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        group.sample_size(2).throughput(Throughput::Elements(100));
        let mut calls = 0u32;
        group.bench_with_input(BenchmarkId::new("param", 7), &3u64, |b, &input| {
            b.iter(|| {
                calls += 1;
                input * 2
            })
        });
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
        assert_eq!(calls, 3); // warm-up + 2 samples
    }

    #[test]
    fn id_rendering() {
        assert_eq!(BenchmarkId::new("f", 12).render("g"), "g/f/12".to_string());
        assert_eq!(BenchmarkId::from("f").render("g"), "g/f".to_string());
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.000us");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.000ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000s");
    }
}
