//! Deterministic pseudo-random numbers without external dependencies.
//!
//! The workspace must build on machines with no access to a crate
//! registry, so the external `rand` and `proptest` crates are replaced by
//! this self-contained implementation:
//!
//! * [`rngs::StdRng`] — xoshiro256++ seeded through SplitMix64, with the
//!   familiar `SeedableRng::seed_from_u64` constructor and
//!   `RngExt::random_range` sampling over the usual range types;
//! * [`prop`] — a miniature property-testing harness (seeded generators
//!   plus a case runner) used to port the former proptest suites.
//!
//! Everything here is deterministic: the same seed always produces the
//! same stream, on every platform, so generated data sets and property
//! cases are reproducible byte for byte.

pub mod prop;

/// Core source of uniform 64-bit values.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding constructor, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, mirroring the `rand` extension trait.
pub trait RngExt: RngCore {
    /// A uniform sample from `range`: `lo..hi` (half-open) or `lo..=hi`
    /// (inclusive) over the integer types and `f64`.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random_range(0.0..1.0) < p
    }
}

impl<T: RngCore> RngExt for T {}

/// Types that can be drawn uniformly from a bounded range.
pub trait SampleUniform: Sized {
    /// Uniform sample in `[lo, hi)`, or `[lo, hi]` when `inclusive`.
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let lo_w = lo as i128;
                let hi_w = hi as i128 + i128::from(inclusive);
                assert!(lo_w < hi_w, "cannot sample from empty range");
                let span = (hi_w - lo_w) as u128;
                // Multiply-shift keeps bias below 2^-64 per unit of span,
                // negligible for every range this workspace draws from.
                let v = (u128::from(rng.next_u64()) * span) >> 64;
                (lo_w + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        _inclusive: bool,
        rng: &mut R,
    ) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * unit
    }
}

/// Range forms accepted by [`RngExt::random_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl<T: SampleUniform> SampleRange for core::ops::Range<T> {
    type Output = T;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange for core::ops::RangeInclusive<T> {
    type Output = T;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(*self.start(), *self.end(), true, rng)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

/// The workspace's standard generator: xoshiro256++.
///
/// Small, fast, and statistically solid for data generation and test-case
/// sampling (this is not a cryptographic generator).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = move || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let a = rng.random_range(0..5usize);
            assert!(a < 5);
            let b = rng.random_range(3..=9);
            assert!((3..=9).contains(&b));
            let c = rng.random_range(-4i64..=4);
            assert!((-4..=4).contains(&c));
        }
    }

    #[test]
    fn int_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.random_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_range_in_bounds_and_varied() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut lo_half = 0;
        for _ in 0..1000 {
            let x = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&x));
            if x < 0.5 {
                lo_half += 1;
            }
        }
        // Roughly balanced halves.
        assert!((300..700).contains(&lo_half), "{lo_half}");
    }

    #[test]
    fn single_value_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(17);
        assert_eq!(rng.random_range(5..=5usize), 5);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(19);
        let _ = rng.random_range(5..5usize);
    }
}
