//! A miniature property-testing harness.
//!
//! Replaces the external `proptest` dependency for this workspace's
//! needs: run a property over a few hundred generated cases, with fully
//! deterministic case generation (no shrinking — failing cases print
//! their case number and seed so they can be replayed exactly by
//! re-running the test).
//!
//! ```
//! use smallrand::prop::{check, Gen};
//!
//! check("reverse twice is identity", 64, |g: &mut Gen| {
//!     let v = g.vec(0, 20, |g| g.usize_in(0, 9));
//!     let mut w = v.clone();
//!     w.reverse();
//!     w.reverse();
//!     assert_eq!(v, w);
//! });
//! ```

use crate::{RngCore, RngExt, SeedableRng, StdRng};

/// Deterministic generator handed to each property case.
pub struct Gen {
    rng: StdRng,
}

impl Gen {
    /// A generator for one case.
    pub fn new(seed: u64) -> Self {
        Gen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The underlying RNG, for direct `random_range` calls.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Uniform `usize` in `[lo, hi]`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.random_range(lo..=hi)
    }

    /// Uniform `i64` in `[lo, hi]`.
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        self.rng.random_range(lo..=hi)
    }

    /// A fair coin.
    pub fn bool(&mut self) -> bool {
        self.rng.next_u64() & 1 == 1
    }

    /// `true` with probability `num/den`.
    pub fn ratio(&mut self, num: u32, den: u32) -> bool {
        self.rng.random_range(0..den) < num
    }

    /// A uniformly chosen element of `items`.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.usize_in(0, items.len() - 1)]
    }

    /// A vector of `min..=max` items produced by `f`.
    pub fn vec<T>(&mut self, min: usize, max: usize, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let n = self.usize_in(min, max);
        (0..n).map(|_| f(self)).collect()
    }

    /// A printable-ASCII string (space through `~`) of `min..=max` chars.
    pub fn printable_string(&mut self, min: usize, max: usize) -> String {
        let n = self.usize_in(min, max);
        (0..n)
            .map(|_| char::from(self.rng.random_range(0x20u8..=0x7e)))
            .collect()
    }

    /// An XML-name-like identifier: `[A-Za-z_]` head plus up to
    /// `max_tail` chars from `[A-Za-z0-9_.-]`.
    pub fn ident(&mut self, max_tail: usize) -> String {
        const HEAD: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_";
        const TAIL: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.-";
        let mut s = String::new();
        s.push(char::from(*self.pick(HEAD)));
        let n = self.usize_in(0, max_tail);
        for _ in 0..n {
            s.push(char::from(*self.pick(TAIL)));
        }
        s
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Run `property` over `cases` deterministic generated cases.
///
/// Case seeds derive from the property name, so distinct properties see
/// distinct streams but every run of the same test sees the same cases.
/// On failure the case number and seed are printed before the panic is
/// propagated.
pub fn check<F: FnMut(&mut Gen)>(name: &str, cases: u64, mut property: F) {
    let base = fnv1a(name.as_bytes());
    for case in 0..cases {
        let seed = base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let property = &mut property;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let mut g = Gen::new(seed);
            property(&mut g);
        }));
        if let Err(payload) = outcome {
            eprintln!("property '{name}' failed at case {case}/{cases} (seed {seed:#018x})");
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_runs_all_cases() {
        let count = std::cell::Cell::new(0u64);
        check("counting", 37, |_| count.set(count.get() + 1));
        assert_eq!(count.get(), 37);
    }

    #[test]
    fn cases_are_deterministic() {
        let mut first: Vec<usize> = Vec::new();
        check("det", 10, |g| first.push(g.usize_in(0, 1_000_000)));
        let mut second: Vec<usize> = Vec::new();
        check("det", 10, |g| second.push(g.usize_in(0, 1_000_000)));
        assert_eq!(first, second);
    }

    #[test]
    fn distinct_properties_get_distinct_streams() {
        let mut a: Vec<usize> = Vec::new();
        check("stream-a", 5, |g| a.push(g.usize_in(0, usize::MAX - 1)));
        let mut b: Vec<usize> = Vec::new();
        check("stream-b", 5, |g| b.push(g.usize_in(0, usize::MAX - 1)));
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "property violated")]
    fn failures_propagate() {
        check("always fails", 3, |_| panic!("property violated"));
    }

    #[test]
    fn ident_shape() {
        check("ident shape", 100, |g| {
            let s = g.ident(8);
            let mut chars = s.chars();
            let head = chars.next().unwrap();
            assert!(head.is_ascii_alphabetic() || head == '_');
            assert!(s.len() <= 9);
            for c in chars {
                assert!(c.is_ascii_alphanumeric() || "_.-".contains(c));
            }
        });
    }

    #[test]
    fn printable_string_shape() {
        check("printable", 100, |g| {
            let s = g.printable_string(1, 20);
            assert!((1..=20).contains(&s.len()));
            assert!(s.bytes().all(|b| (0x20..=0x7e).contains(&b)));
        });
    }
}
