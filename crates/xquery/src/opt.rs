//! A rule-based plan optimizer.
//!
//! A [`Rule`] inspects a plan node and
//! optionally returns a replacement, and the [`Optimizer`] applies its
//! rules over the whole plan tree to a fixpoint, recording every firing
//! in an [`OptTrace`] (surfaced by `EXPLAIN` / `EXPLAIN ANALYZE` in the
//! `timber` crate).
//!
//! The standard rule set, in order:
//!
//! 1. [`GroupByRewriteRule`] — the paper's Sec. 4.1 grouping rewrite
//!    (join pipeline → `GROUPBY` pipeline). It must run first:
//!    detection keys on the
//!    pristine `StitchConstruct`/`LeftOuterJoinDb` shape the naive
//!    translation emits.
//! 2. [`CubeFuseRule`] — collapses the `Union` of per-level
//!    `Project ∘ Aggregate ∘ GroupBy` pipelines a `CUBE BY` translation
//!    emits into one [`Plan::Cube`] scan, when every branch passes the
//!    rollup-fusion guards, all branches share one input / pattern /
//!    aggregate, and the bases form the prefix chain of the lattice. It
//!    must run before [`RollupFuseRule`], which would otherwise fuse the
//!    branches individually (the graceful-degradation path when a cube
//!    guard fails).
//! 3. [`RollupFuseRule`] — fuses an `Aggregate` whose only input is a
//!    `GroupBy` (and whose grouped trees are not otherwise consumed)
//!    into one streaming [`Plan::Rollup`], skipping group-tree
//!    materialization entirely. It runs right after the grouping
//!    rewrite so the `Aggregate`∘`GroupBy` pair it keys on is fused
//!    before the projection rules restructure the pipeline below it.
//! 4. [`ProjectionPruneRule`] — drops the synthetic `doc_root` pattern
//!    root from a `Project`∘`SelectDb` pair when no downstream list
//!    references it, shrinking every pattern match by one node.
//! 5. [`SelectProjectFuseRule`] — fuses a `Project` directly over a
//!    `SelectDb` with the *same* pattern into one
//!    [`Plan::SelectProject`], so a single pattern match serves both
//!    operators.

use crate::plan::Plan;
use std::fmt::Write;
use tax::ops::aggregate::{AggFunc, UpdateSpec};
use tax::ops::groupby::{BasisItem, Direction, GroupOrder};
use tax::ops::project::ProjectItem;
use tax::pattern::{Axis, PatternNodeId, PatternTree, Pred};
use tax::tags;

/// A plan rewrite rule: inspect one plan node, optionally replace it.
///
/// `apply` must be *local*: it looks at the given node (and its inputs)
/// and returns a semantically equivalent replacement, or `None` when the
/// rule does not apply there. The [`Optimizer`] handles traversal and
/// iteration to fixpoint.
pub trait Rule {
    /// Stable rule name, recorded in the firing trace.
    fn name(&self) -> &'static str;
    /// Try the rule at this plan node.
    fn apply(&self, plan: &Plan) -> Option<Plan>;
}

/// One rule application, in firing order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleFiring {
    /// The rule that fired.
    pub rule: &'static str,
    /// The fixpoint pass (1-based) it fired in.
    pub pass: usize,
}

/// The recorded trace of an [`Optimizer`] run.
#[derive(Debug, Clone, Default)]
pub struct OptTrace {
    /// Every rule firing, in order.
    pub firings: Vec<RuleFiring>,
    /// Number of passes executed (the last one fires nothing).
    pub passes: usize,
}

impl OptTrace {
    /// Did the named rule fire at least once?
    pub fn fired(&self, rule: &str) -> bool {
        self.firings.iter().any(|f| f.rule == rule)
    }

    /// Human-readable trace, one firing per line.
    pub fn render(&self) -> String {
        if self.firings.is_empty() {
            return "(no rules fired)\n".to_owned();
        }
        let mut out = String::new();
        for f in &self.firings {
            let _ = writeln!(out, "pass {}: {}", f.pass, f.rule);
        }
        out
    }
}

/// Applies a rule list over whole plans to a fixpoint.
pub struct Optimizer {
    rules: Vec<Box<dyn Rule>>,
}

/// Bound on fixpoint passes; the standard rules converge in two or
/// three, so hitting this means a rule pair is oscillating.
const MAX_PASSES: usize = 16;
/// Bound on repeated applications of one rule at one node per visit.
const MAX_LOCAL: usize = 8;

impl Optimizer {
    /// The standard rule set (grouping rewrite, cube fusion, rollup
    /// fusion, projection pruning, select→project fusion), in the order
    /// described at module level.
    pub fn standard() -> Optimizer {
        Optimizer::with_rules(vec![
            Box::new(GroupByRewriteRule),
            Box::new(CubeFuseRule),
            Box::new(RollupFuseRule),
            Box::new(ProjectionPruneRule),
            Box::new(SelectProjectFuseRule),
        ])
    }

    /// The standard set *without* [`CubeFuseRule`] and
    /// [`RollupFuseRule`]: grouped plans keep the materialized
    /// `GroupBy → Aggregate` pipeline (and cube plans the `Union` of
    /// per-level pipelines). This is the reference plan the rollup's and
    /// cube's differential tests and the `e2_count_groupby` benchmark
    /// key compare against.
    pub fn materializing() -> Optimizer {
        Optimizer::with_rules(vec![
            Box::new(GroupByRewriteRule),
            Box::new(ProjectionPruneRule),
            Box::new(SelectProjectFuseRule),
        ])
    }

    /// An optimizer over an explicit rule list (applied in order within
    /// each pass).
    pub fn with_rules(rules: Vec<Box<dyn Rule>>) -> Optimizer {
        Optimizer { rules }
    }

    /// Run every rule over the whole plan, repeating until a pass fires
    /// nothing (or the pass bound is hit).
    pub fn optimize(&self, mut plan: Plan) -> (Plan, OptTrace) {
        let mut trace = OptTrace::default();
        for pass in 1..=MAX_PASSES {
            trace.passes = pass;
            let before = trace.firings.len();
            for rule in &self.rules {
                plan = apply_everywhere(rule.as_ref(), plan, pass, &mut trace.firings);
            }
            if trace.firings.len() == before {
                break;
            }
        }
        (plan, trace)
    }
}

/// Convenience: run [`Optimizer::standard`] on a plan.
pub fn optimize(plan: Plan) -> (Plan, OptTrace) {
    Optimizer::standard().optimize(plan)
}

/// Apply one rule top-down over the plan tree: repeatedly at this node
/// (a replacement may enable the rule again), then into the children of
/// whatever the node became.
fn apply_everywhere(
    rule: &dyn Rule,
    mut plan: Plan,
    pass: usize,
    firings: &mut Vec<RuleFiring>,
) -> Plan {
    for _ in 0..MAX_LOCAL {
        match rule.apply(&plan) {
            Some(next) => {
                firings.push(RuleFiring {
                    rule: rule.name(),
                    pass,
                });
                plan = next;
            }
            None => break,
        }
    }
    map_children(plan, &mut |child| {
        apply_everywhere(rule, child, pass, firings)
    })
}

/// Rebuild a plan node with `f` applied to each direct child plan.
fn map_children(plan: Plan, f: &mut impl FnMut(Plan) -> Plan) -> Plan {
    match plan {
        Plan::SelectDb { .. } | Plan::SelectProject { .. } => plan,
        Plan::Project {
            input,
            pattern,
            pl,
            anchor_root,
        } => Plan::Project {
            input: Box::new(f(*input)),
            pattern,
            pl,
            anchor_root,
        },
        Plan::DupElim { input, pattern, by } => Plan::DupElim {
            input: Box::new(f(*input)),
            pattern,
            by,
        },
        Plan::LeftOuterJoinDb {
            left,
            left_pattern,
            left_label,
            right_pattern,
            right_label,
            right_sl,
            right_extract,
            order,
        } => Plan::LeftOuterJoinDb {
            left: Box::new(f(*left)),
            left_pattern,
            left_label,
            right_pattern,
            right_label,
            right_sl,
            right_extract,
            order,
        },
        Plan::GroupBy {
            input,
            pattern,
            basis,
            ordering,
        } => Plan::GroupBy {
            input: Box::new(f(*input)),
            pattern,
            basis,
            ordering,
        },
        Plan::Aggregate {
            input,
            pattern,
            func,
            of,
            new_tag,
            spec,
        } => Plan::Aggregate {
            input: Box::new(f(*input)),
            pattern,
            func,
            of,
            new_tag,
            spec,
        },
        Plan::Rollup {
            input,
            pattern,
            basis,
            member_pattern,
            of,
            func,
            new_tag,
            flat,
        } => Plan::Rollup {
            input: Box::new(f(*input)),
            pattern,
            basis,
            member_pattern,
            of,
            func,
            new_tag,
            flat,
        },
        Plan::Union { inputs } => Plan::Union {
            inputs: inputs.into_iter().map(f).collect(),
        },
        Plan::Cube {
            input,
            pattern,
            basis,
            member_pattern,
            of,
            func,
            new_tag,
        } => Plan::Cube {
            input: Box::new(f(*input)),
            pattern,
            basis,
            member_pattern,
            of,
            func,
            new_tag,
        },
        Plan::Rename { input, tag } => Plan::Rename {
            input: Box::new(f(*input)),
            tag,
        },
        Plan::StitchConstruct {
            outer,
            outer_pattern,
            outer_label,
            inner,
            inner_pattern,
            inner_label,
            inner_extract,
            agg,
            order,
            tag,
        } => Plan::StitchConstruct {
            outer: Box::new(f(*outer)),
            outer_pattern,
            outer_label,
            inner: inner.map(|i| Box::new(f(*i))),
            inner_pattern,
            inner_label,
            inner_extract,
            agg,
            order,
            tag,
        },
    }
}

/// The paper's grouping rewrite (Sec. 4.1) as a rule: detect the
/// join-based naive plan shape ([`detect`], Phase 1) and replace it
/// with the `GROUPBY` pipeline ([`build_groupby_plan`], Phase 2).
pub struct GroupByRewriteRule;

impl Rule for GroupByRewriteRule {
    fn name(&self) -> &'static str {
        "groupby-rewrite"
    }

    fn apply(&self, plan: &Plan) -> Option<Plan> {
        detect(plan)
    }
}

// === The grouping rewrite of Sec. 4.1 (Phases 1 and 2) ===
//
// **Phase 1 — detection.** A grouping query is recognized when
//
// 1. a left outer join is applied on the outcome of a previous selection
//    and the database, and
// 2. the left ("outer") pattern tree is a *subset* of the right
//    ("inner") pattern tree under the closure-mark rule (`pc ⊆ ad`, not
//    `ad ⊆ pc`) — see [`tax::pattern::PatternTree::subset_embedding`].
//
// **Phase 2 — rewrite.** The join pipeline is replaced by
//
// 1. a selection + projection producing the collection of bound-subject
//    trees (the articles, Fig. 9);
// 2. the `GROUPBY` operator whose pattern is the subject-rooted subtree
//    of the inner pattern and whose grouping basis is the join value
//    (`$2.content`, Fig. 5b/5c);
// 3. (count variant) an aggregation inserting the member count;
// 4. a final projection extracting the RETURN nodes from the group
//    trees (Fig. 5d);
// 5. a rename to the constructed tag.

/// Phase 1: inspect the plan; on success build the Phase 2 plan.
fn detect(plan: &Plan) -> Option<Plan> {
    let Plan::StitchConstruct {
        outer_pattern,
        outer_label,
        inner: Some(inner),
        inner_extract,
        agg,
        tag,
        ..
    } = plan
    else {
        return None;
    };
    let Plan::LeftOuterJoinDb {
        left,
        left_pattern,
        left_label,
        right_pattern,
        right_label,
        right_sl,
        right_extract,
        order,
    } = inner.as_ref()
    else {
        return None;
    };

    // Phase 1, step 1: the join's left side must be the outcome of a
    // previous selection over the database.
    if !is_selection_chain(left) {
        return None;
    }
    // (Sanity: the stitch's outer and the join's left agree.)
    if left_label != outer_label || left_pattern.len() != outer_pattern.len() {
        return None;
    }

    // Phase 1, step 2: the outer pattern must be a subset of the inner.
    let mapping = left_pattern.subset_embedding(right_pattern)?;
    let join_node = *right_label;
    // The join value must be the outer bound variable's image.
    if mapping[*left_label] != join_node {
        return None;
    }

    // The grouping subject: the adorned bound variable of the inner FOR
    // (from the join's selection list), falling back to the lowest
    // common ancestor of the join node and the extract paths.
    let subject = right_sl.first().copied().or_else(|| {
        lca(
            right_pattern,
            join_node,
            extract_source(right_pattern, inner_extract),
        )
    })?;
    if !right_pattern.is_ancestor(subject, join_node) {
        return None;
    }

    if !right_pattern.is_ancestor(subject, *right_extract) {
        return None;
    }
    Some(build_groupby_plan(
        right_pattern,
        subject,
        join_node,
        *right_extract,
        agg.clone(),
        *order,
        tag,
    ))
}

/// Is this plan a `SelectDb` possibly wrapped in projections / duplicate
/// eliminations — "the outcome of a previous selection"?
fn is_selection_chain(plan: &Plan) -> bool {
    match plan {
        Plan::SelectDb { .. } | Plan::SelectProject { .. } => true,
        Plan::Project { input, .. } | Plan::DupElim { input, .. } => is_selection_chain(input),
        _ => false,
    }
}

/// Phase 2: the GROUPBY plan.
#[allow(clippy::too_many_arguments)]
fn build_groupby_plan(
    right_pattern: &PatternTree,
    subject: PatternNodeId,
    join_node: PatternNodeId,
    extract: PatternNodeId,
    agg: Option<(AggFunc, String)>,
    order: Option<(PatternNodeId, Direction)>,
    tag: &str,
) -> Plan {
    // Step 1: the initial pattern tree — the bound variable with its path
    // from the document root (Fig. 5a). Selection with SL = subject,
    // projection with PL = subject*.
    let (subject_path, path_map) = prefix_path_pattern(right_pattern, subject);
    let subject_in_path = path_map[subject];
    let input_plan = Plan::Project {
        input: Box::new(Plan::SelectDb {
            pattern: subject_path.clone(),
            sl: vec![subject_in_path],
        }),
        pattern: subject_path,
        pl: vec![ProjectItem::deep(subject_in_path)],
        anchor_root: true,
    };

    // Step 2: the GROUPBY input pattern — the subject-rooted subtree of
    // the inner pattern restricted to the join path (Fig. 5b), plus the
    // ordering path when the user requested sorting; grouping basis = the
    // join value's content.
    let mut gb_pattern = PatternTree::with_root(right_pattern.node(subject).pred.clone());
    let mut gb_map: Vec<Option<PatternNodeId>> = vec![None; right_pattern.len()];
    gb_map[subject] = Some(gb_pattern.root());
    let basis_node = graft_into(
        &mut gb_pattern,
        right_pattern,
        subject,
        join_node,
        &mut gb_map,
    );
    let ordering: Vec<GroupOrder> = match order {
        None => vec![],
        Some((onode, dir)) => {
            let label = graft_into(&mut gb_pattern, right_pattern, subject, onode, &mut gb_map);
            vec![GroupOrder {
                label,
                direction: dir,
            }]
        }
    };
    let group_plan = Plan::GroupBy {
        input: Box::new(input_plan),
        pattern: gb_pattern,
        basis: vec![BasisItem::content(basis_node)],
        ordering,
    };

    // Step 3/4: the final projection over group trees (Fig. 5d); for the
    // count variant, an aggregation first inserts the member count.
    let subject_tag = right_pattern
        .node(subject)
        .pred
        .required_tag()
        .unwrap_or("*")
        .to_owned();
    let join_tag = right_pattern
        .node(join_node)
        .pred
        .required_tag()
        .unwrap_or("*")
        .to_owned();

    let mut fp = PatternTree::with_root(Pred::tag(tax::tags::GROUP_ROOT));
    let basis = fp.add_child(fp.root(), Axis::Child, Pred::tag(tax::tags::GROUPING_BASIS));
    let key = fp.add_child(basis, Axis::Child, Pred::tag(join_tag));
    let pl = vec![ProjectItem::shallow(fp.root()), ProjectItem::deep(key)];

    let (plan_before_project, fp, pl) = if let Some((func, agg_tag)) = agg {
        // Aggregate over the extracted values within each group:
        // TAX_group_root / subroot / subject / … / extract.
        let mut agg_pattern = PatternTree::with_root(Pred::tag(tax::tags::GROUP_ROOT));
        let subroot = agg_pattern.add_child(
            agg_pattern.root(),
            Axis::Child,
            Pred::tag(tax::tags::GROUP_SUBROOT),
        );
        let member = agg_pattern.add_child(subroot, Axis::Child, Pred::tag(subject_tag));
        let mut prev = member;
        for pid in path_between(right_pattern, subject, extract) {
            prev = agg_pattern.add_child(
                prev,
                right_pattern.node(pid).axis,
                right_pattern.node(pid).pred.clone(),
            );
        }
        let agg_plan = Plan::Aggregate {
            input: Box::new(group_plan),
            pattern: agg_pattern,
            func,
            of: prev,
            new_tag: agg_tag.clone(),
            spec: UpdateSpec::AfterLastChild(0),
        };
        let mut fp = fp;
        let agg_node = fp.add_child(fp.root(), Axis::Child, Pred::tag(agg_tag));
        let mut pl = pl;
        pl.push(ProjectItem::deep(agg_node));
        (agg_plan, fp, pl)
    } else {
        // Extract the RETURN node from inside the group members:
        // subroot -pc-> subject -…-> extract.
        let mut fp = fp;
        let subroot = fp.add_child(fp.root(), Axis::Child, Pred::tag(tax::tags::GROUP_SUBROOT));
        let member = fp.add_child(subroot, Axis::Child, Pred::tag(subject_tag));
        let mut pl = pl;
        let mut prev = member;
        for pid in path_between(right_pattern, subject, extract) {
            prev = fp.add_child(
                prev,
                right_pattern.node(pid).axis,
                right_pattern.node(pid).pred.clone(),
            );
        }
        pl.push(ProjectItem::deep(prev));
        (group_plan, fp, pl)
    };

    Plan::Rename {
        input: Box::new(Plan::Project {
            input: Box::new(plan_before_project),
            pattern: fp,
            pl,
            anchor_root: true,
        }),
        tag: tag.to_owned(),
    }
}

/// The pattern consisting of the path root → … → `target` only, plus the
/// node mapping.
fn prefix_path_pattern(
    pattern: &PatternTree,
    target: PatternNodeId,
) -> (PatternTree, Vec<PatternNodeId>) {
    let mut chain = vec![target];
    let mut cur = target;
    while let Some(parent) = pattern.node(cur).parent {
        chain.push(parent);
        cur = parent;
    }
    chain.reverse();
    let mut out = PatternTree::with_root(pattern.node(chain[0]).pred.clone());
    let mut mapping = vec![usize::MAX; pattern.len()];
    mapping[chain[0]] = out.root();
    let mut prev = out.root();
    for &pid in &chain[1..] {
        prev = out.add_child(prev, pattern.node(pid).axis, pattern.node(pid).pred.clone());
        mapping[pid] = prev;
    }
    (out, mapping)
}

/// Node ids strictly between `from` (exclusive) and `to` (inclusive),
/// walking parent links from `to`.
fn path_between(
    pattern: &PatternTree,
    from: PatternNodeId,
    to: PatternNodeId,
) -> Vec<PatternNodeId> {
    let mut path = vec![to];
    let mut cur = to;
    while let Some(parent) = pattern.node(cur).parent {
        if parent == from {
            path.reverse();
            return path;
        }
        path.push(parent);
        cur = parent;
    }
    // `from` is not an ancestor; return just `to` (callers guard this).
    vec![to]
}

/// Graft the `from`→`to` path of `src` into `dst` (which mirrors the
/// subtree rooted at `from`), reusing already-grafted nodes via `map`.
/// Returns `to`'s node in `dst`.
fn graft_into(
    dst: &mut PatternTree,
    src: &PatternTree,
    from: PatternNodeId,
    to: PatternNodeId,
    map: &mut [Option<PatternNodeId>],
) -> PatternNodeId {
    let mut last = map[from].expect("root mapped");
    let mut prev = last;
    for pid in path_between(src, from, to) {
        let node = match map[pid] {
            Some(n) => n,
            None => {
                let n = dst.add_child(prev, src.node(pid).axis, src.node(pid).pred.clone());
                map[pid] = Some(n);
                n
            }
        };
        prev = node;
        last = node;
    }
    last
}

/// First extract node's id in the right pattern (used by the LCA
/// fallback). The stitch extract ids index the *stitch* pattern, so the
/// fallback conservatively picks the right pattern's last leaf.
fn extract_source(pattern: &PatternTree, _extract: &[(PatternNodeId, bool)]) -> PatternNodeId {
    pattern
        .iter()
        .filter(|(_, n)| n.children.is_empty())
        .map(|(id, _)| id)
        .last()
        .unwrap_or(0)
}

/// Lowest common ancestor of two pattern nodes.
fn lca(pattern: &PatternTree, a: PatternNodeId, b: PatternNodeId) -> Option<PatternNodeId> {
    let mut ancestors = std::collections::HashSet::new();
    let mut cur = Some(a);
    while let Some(n) = cur {
        ancestors.insert(n);
        cur = pattern.node(n).parent;
    }
    let mut cur = Some(b);
    while let Some(n) = cur {
        if ancestors.contains(&n) {
            return Some(n);
        }
        cur = pattern.node(n).parent;
    }
    None
}

/// Rollup fusion: an `Aggregate` whose only input is a `GroupBy`, with
/// the grouped trees not otherwise consumed, fuses into one streaming
/// [`Plan::Rollup`] that never materializes the group trees.
///
/// The rule keys on the exact pipeline the grouping rewrite emits —
/// `Project ∘ Aggregate ∘ GroupBy` with the `Project` as the pair's sole
/// consumer — and checks everything the substitution's byte-identity
/// argument needs:
///
/// * the consuming projection anchors at tree roots, its pattern root is
///   exactly `Tag(TAX_group_root)`, and every pattern node carries a
///   required tag that is **not** `TAX_group_subroot`, reached by a `pc`
///   edge — so no binding can ever descend into the member subtree,
///   which is the only part of a group tree the rollup omits;
/// * the aggregate pattern is the canonical member walk
///   `TAX_group_root -pc-> TAX_group_subroot -pc-> member …`, its update
///   spec appends at the group root, and the aggregated label lies
///   inside the member subtree — so it re-anchors cleanly at the input
///   trees (inside a group tree, the member label binds exactly the
///   subroot's member children, i.e. the input trees themselves);
/// * the `GroupBy` has no ordering list: members then accumulate in
///   witness arrival order, and the rollup's running folds replay the
///   materialized kernel's value sequence bit for bit (floating-point
///   folds are order-sensitive).
///
/// Undefined aggregates need no special case: the materialized
/// `Aggregate` passes such group trees through without the value child
/// and the projection drops them; the rollup emits the group without the
/// value child and the same projection drops it too.
pub struct RollupFuseRule;

impl Rule for RollupFuseRule {
    fn name(&self) -> &'static str {
        "rollup-fuse"
    }

    fn apply(&self, plan: &Plan) -> Option<Plan> {
        let Plan::Project {
            input,
            pattern,
            pl,
            anchor_root: true,
        } = plan
        else {
            return None;
        };
        let Plan::Aggregate {
            input: agg_input,
            pattern: agg_pattern,
            func,
            of,
            new_tag,
            spec,
        } = input.as_ref()
        else {
            return None;
        };
        let Plan::GroupBy {
            input: gb_input,
            pattern: gb_pattern,
            basis,
            ordering,
        } = agg_input.as_ref()
        else {
            return None;
        };
        if !ordering.is_empty() {
            return None;
        }

        // The consumer must be provably blind to the member subtree.
        let proot = pattern.root();
        if !matches!(&pattern.node(proot).pred, Pred::Tag(t) if t == tags::GROUP_ROOT) {
            return None;
        }
        for (id, node) in pattern.iter() {
            let tag = node.pred.required_tag()?;
            if tag == tags::GROUP_SUBROOT {
                return None;
            }
            if id != proot && node.axis != Axis::Child {
                return None;
            }
        }

        // The aggregate must walk root → subroot → member and append its
        // value at the group root.
        let aroot = agg_pattern.root();
        if *spec != UpdateSpec::AfterLastChild(aroot) {
            return None;
        }
        if !matches!(&agg_pattern.node(aroot).pred, Pred::Tag(t) if t == tags::GROUP_ROOT) {
            return None;
        }
        let [subroot] = agg_pattern.node(aroot).children[..] else {
            return None;
        };
        if agg_pattern.node(subroot).axis != Axis::Child
            || !matches!(&agg_pattern.node(subroot).pred, Pred::Tag(t) if t == tags::GROUP_SUBROOT)
        {
            return None;
        }
        let [member] = agg_pattern.node(subroot).children[..] else {
            return None;
        };
        if agg_pattern.node(member).axis != Axis::Child {
            return None;
        }
        let (member_pattern, mapping) = agg_pattern.subtree_pattern(member);
        let of = (*mapping.get(*of)?)?;

        let flat = Self::projection_is_flat_shape(pattern, pl, gb_pattern, basis, new_tag);
        let rollup = Plan::Rollup {
            input: gb_input.clone(),
            pattern: gb_pattern.clone(),
            basis: basis.clone(),
            member_pattern,
            of,
            func: *func,
            new_tag: new_tag.clone(),
            flat,
        };
        Some(if flat {
            rollup
        } else {
            Plan::Project {
                input: Box::new(rollup),
                pattern: pattern.clone(),
                pl: pl.clone(),
                anchor_root: true,
            }
        })
    }
}

impl RollupFuseRule {
    /// True when the consuming projection is exactly the canonical
    /// `root { basis-wrapper { key }, aggregate }` reshape — in which
    /// case the rollup emits that shape directly ([`Plan::Rollup`]'s
    /// `flat`) and the `Project` node disappears. Requires all of:
    ///
    /// * a single content-valued basis item, so the basis wrapper holds
    ///   exactly one child: the bound key node, whose subtree the kernel
    ///   copies verbatim (identical to the projection's deep copy);
    /// * the pattern is exactly four nodes `root { wrapper { key }, agg }`
    ///   with bare-`Tag` predicates: the wrapper is `TAX_grouping_basis`,
    ///   the key tag is the basis node's required tag (every emitted
    ///   wrapper holds exactly one child with that tag, so the key
    ///   binding exists and is unique), and the aggregate tag is
    ///   `new_tag` (bound iff the aggregate is defined — the flat kernel
    ///   drops undefined groups just as the projection drops trees with
    ///   no aggregate binding);
    /// * the projection list is exactly `[shallow(root), deep(key),
    ///   deep(agg)]` — a fresh shallow group root with the key subtree
    ///   and value element appended in order, which is the flat tree.
    fn projection_is_flat_shape(
        pattern: &PatternTree,
        pl: &[ProjectItem],
        gb_pattern: &PatternTree,
        basis: &[BasisItem],
        new_tag: &str,
    ) -> bool {
        let [item] = basis else { return false };
        if item.attr.is_some() {
            return false;
        }
        let Some(key_tag) = gb_pattern.node(item.label).pred.required_tag() else {
            return false;
        };
        if pattern.iter().count() != 4 {
            return false;
        }
        let proot = pattern.root();
        let [wrapper, agg] = pattern.node(proot).children[..] else {
            return false;
        };
        if !matches!(&pattern.node(wrapper).pred, Pred::Tag(t) if t == tags::GROUPING_BASIS) {
            return false;
        }
        if !matches!(&pattern.node(agg).pred, Pred::Tag(t) if t == new_tag)
            || !pattern.node(agg).children.is_empty()
        {
            return false;
        }
        let [key] = pattern.node(wrapper).children[..] else {
            return false;
        };
        if !matches!(&pattern.node(key).pred, Pred::Tag(t) if t == key_tag)
            || !pattern.node(key).children.is_empty()
        {
            return false;
        }
        *pl == [
            ProjectItem::shallow(proot),
            ProjectItem::deep(key),
            ProjectItem::deep(agg),
        ]
    }
}

/// Cube fusion: the `Union` of per-level `Project ∘ Aggregate ∘ GroupBy`
/// pipelines emitted by a `CUBE BY` translation collapses into one
/// [`Plan::Cube`] scan that accumulates every lattice level at once.
///
/// Per branch the rule re-runs the [`RollupFuseRule`] substitution
/// argument — consumer blind to the member subtree, canonical aggregate
/// walk, unordered `GroupBy` — and additionally requires the consuming
/// projection to be exactly the *multi-key flat* reshape
/// `root { wrapper { key_1 … key_k }, value }` with projection list
/// `[shallow(root), deep(key_1), …, deep(key_k), deep(value)]`, because
/// the cube kernel only emits the flat shape. Across branches it
/// requires:
///
/// * branch `k` (1-based) groups on exactly the first `k` items of the
///   last branch's basis — the prefix chain of the lattice;
/// * every branch shares the same grouping pattern, member pattern,
///   aggregated label, function, and value tag;
/// * every branch consumes the same input plan (compared by rendered
///   plan text, since plans carry no structural equality).
///
/// Under those guards the cube's level-`k` accumulation *is* the flat
/// rollup of branch `k` — same witness stream (identical pattern and
/// input), same prefix keys, same fold order — so the fused output
/// matches the union byte for byte, except for the `TAX_cube_level`
/// marker child each cube tree carries. When any guard fails the rule
/// backs off and [`RollupFuseRule`] fuses the branches individually.
pub struct CubeFuseRule;

/// One analyzed cube-candidate branch.
struct CubeBranch<'a> {
    input: &'a Plan,
    gb_pattern: &'a PatternTree,
    basis: &'a [BasisItem],
    member_pattern: PatternTree,
    of: PatternNodeId,
    func: tax::ops::aggregate::AggFunc,
    new_tag: &'a str,
}

impl Rule for CubeFuseRule {
    fn name(&self) -> &'static str {
        "cube-fuse"
    }

    fn apply(&self, plan: &Plan) -> Option<Plan> {
        let Plan::Union { inputs } = plan else {
            return None;
        };
        if inputs.len() < 2 {
            return None;
        }
        let branches: Vec<CubeBranch<'_>> = inputs
            .iter()
            .map(Self::analyze_branch)
            .collect::<Option<Vec<_>>>()?;
        let full = branches.last().expect("at least two branches");
        if full.basis.len() != branches.len() {
            return None;
        }
        let input_text = full.input.explain();
        for (i, b) in branches.iter().enumerate() {
            if b.basis != &full.basis[..i + 1] {
                return None;
            }
            if b.gb_pattern != full.gb_pattern
                || b.member_pattern != full.member_pattern
                || b.of != full.of
                || b.func != full.func
                || b.new_tag != full.new_tag
            {
                return None;
            }
            if i + 1 < branches.len() && b.input.explain() != input_text {
                return None;
            }
        }
        Some(Plan::Cube {
            input: Box::new(full.input.clone()),
            pattern: full.gb_pattern.clone(),
            basis: full.basis.to_vec(),
            member_pattern: full.member_pattern.clone(),
            of: full.of,
            func: full.func,
            new_tag: full.new_tag.to_owned(),
        })
    }
}

impl CubeFuseRule {
    /// Decompose one union branch, enforcing the per-branch guards
    /// shared with [`RollupFuseRule`] plus the mandatory multi-key flat
    /// projection. Returns `None` when any guard fails.
    fn analyze_branch(plan: &Plan) -> Option<CubeBranch<'_>> {
        let Plan::Project {
            input,
            pattern,
            pl,
            anchor_root: true,
        } = plan
        else {
            return None;
        };
        let Plan::Aggregate {
            input: agg_input,
            pattern: agg_pattern,
            func,
            of,
            new_tag,
            spec,
        } = input.as_ref()
        else {
            return None;
        };
        let Plan::GroupBy {
            input: gb_input,
            pattern: gb_pattern,
            basis,
            ordering,
        } = agg_input.as_ref()
        else {
            return None;
        };
        if !ordering.is_empty() {
            return None;
        }

        // Consumer blindness to the member subtree (as in rollup-fuse).
        let proot = pattern.root();
        if !matches!(&pattern.node(proot).pred, Pred::Tag(t) if t == tags::GROUP_ROOT) {
            return None;
        }
        for (id, node) in pattern.iter() {
            let tag = node.pred.required_tag()?;
            if tag == tags::GROUP_SUBROOT {
                return None;
            }
            if id != proot && node.axis != Axis::Child {
                return None;
            }
        }

        // The canonical aggregate walk (as in rollup-fuse).
        let aroot = agg_pattern.root();
        if *spec != UpdateSpec::AfterLastChild(aroot) {
            return None;
        }
        if !matches!(&agg_pattern.node(aroot).pred, Pred::Tag(t) if t == tags::GROUP_ROOT) {
            return None;
        }
        let [subroot] = agg_pattern.node(aroot).children[..] else {
            return None;
        };
        if agg_pattern.node(subroot).axis != Axis::Child
            || !matches!(&agg_pattern.node(subroot).pred, Pred::Tag(t) if t == tags::GROUP_SUBROOT)
        {
            return None;
        }
        let [member] = agg_pattern.node(subroot).children[..] else {
            return None;
        };
        if agg_pattern.node(member).axis != Axis::Child {
            return None;
        }
        let (member_pattern, mapping) = agg_pattern.subtree_pattern(member);
        let of = (*mapping.get(*of)?)?;

        // The cube kernel only emits the flat shape, so the multi-key
        // flat projection is mandatory here, not an optimization.
        if !Self::projection_is_multikey_flat_shape(pattern, pl, gb_pattern, basis, new_tag) {
            return None;
        }
        Some(CubeBranch {
            input: gb_input.as_ref(),
            gb_pattern,
            basis,
            member_pattern,
            of,
            func: *func,
            new_tag,
        })
    }

    /// [`RollupFuseRule::projection_is_flat_shape`] generalized to `k`
    /// grouping keys: the pattern is exactly
    /// `root { wrapper { key_1 … key_k }, agg }` with bare-`Tag`
    /// predicates, the key tags are the basis nodes' required tags in
    /// basis order (and pairwise distinct, so each key binding is
    /// unique), and the projection list is
    /// `[shallow(root), deep(key_1), …, deep(key_k), deep(agg)]`.
    fn projection_is_multikey_flat_shape(
        pattern: &PatternTree,
        pl: &[ProjectItem],
        gb_pattern: &PatternTree,
        basis: &[BasisItem],
        new_tag: &str,
    ) -> bool {
        if basis.is_empty() || basis.iter().any(|b| b.attr.is_some()) {
            return false;
        }
        let Some(key_tags) = basis
            .iter()
            .map(|b| gb_pattern.node(b.label).pred.required_tag())
            .collect::<Option<Vec<_>>>()
        else {
            return false;
        };
        for (i, t) in key_tags.iter().enumerate() {
            if key_tags[..i].contains(t) {
                return false;
            }
        }
        if pattern.iter().count() != 3 + basis.len() {
            return false;
        }
        let proot = pattern.root();
        let [wrapper, agg] = pattern.node(proot).children[..] else {
            return false;
        };
        if !matches!(&pattern.node(wrapper).pred, Pred::Tag(t) if t == tags::GROUPING_BASIS) {
            return false;
        }
        if !matches!(&pattern.node(agg).pred, Pred::Tag(t) if t == new_tag)
            || !pattern.node(agg).children.is_empty()
        {
            return false;
        }
        let keys = &pattern.node(wrapper).children[..];
        if keys.len() != basis.len() {
            return false;
        }
        for (&key, tag) in keys.iter().zip(&key_tags) {
            if !matches!(&pattern.node(key).pred, Pred::Tag(t) if t == tag)
                || !pattern.node(key).children.is_empty()
            {
                return false;
            }
        }
        let mut expect = vec![ProjectItem::shallow(proot)];
        expect.extend(keys.iter().map(|&k| ProjectItem::deep(k)));
        expect.push(ProjectItem::deep(agg));
        *pl == expect
    }
}

/// Projection pruning: in a `Project` applied directly over a `SelectDb`
/// with the same pattern, drop the synthetic `doc_root` pattern root when
/// nothing downstream references it.
///
/// Every stored tree sits under the unique synthetic `doc_root` element,
/// so a root pattern node `$1:doc_root` with a single `ad` child
/// constrains nothing: removing it (re-rooting the pattern at the child)
/// yields the same bindings in the same order, and — because `$1` appears
/// in neither the adornment nor the projection list — identical witness
/// and output trees. The rule requires all of:
///
/// * the root predicate is exactly `Tag("doc_root")` (no extra
///   conjuncts),
/// * the root has exactly one child, reached via an `ad` edge,
/// * the root label occurs in neither `sl` nor `pl`,
/// * the projection anchors at tree roots (`anchor_root`), which stays
///   true after re-rooting since witness roots bind the new pattern
///   root.
pub struct ProjectionPruneRule;

/// The synthetic document-root tag (see `timber`'s loader and
/// `translate::DOC_ROOT`).
const DOC_ROOT: &str = "doc_root";

impl Rule for ProjectionPruneRule {
    fn name(&self) -> &'static str {
        "projection-prune"
    }

    fn apply(&self, plan: &Plan) -> Option<Plan> {
        let Plan::Project {
            input,
            pattern,
            pl,
            anchor_root: true,
        } = plan
        else {
            return None;
        };
        let Plan::SelectDb {
            pattern: sel_pattern,
            sl,
        } = input.as_ref()
        else {
            return None;
        };
        if sel_pattern != pattern {
            return None;
        }
        let root = pattern.root();
        if !matches!(&pattern.node(root).pred, Pred::Tag(t) if t == DOC_ROOT) {
            return None;
        }
        let [child] = pattern.node(root).children[..] else {
            return None;
        };
        if pattern.node(child).axis != Axis::Descendant {
            return None;
        }
        if sl.contains(&root) || pl.iter().any(|p| p.label == root) {
            return None;
        }
        let (pruned, mapping) = pattern.subtree_pattern(child);
        let remap = |l: PatternNodeId| mapping[l].expect("label below the pruned root");
        let sl: Vec<PatternNodeId> = sl.iter().map(|&l| remap(l)).collect();
        let pl: Vec<ProjectItem> = pl
            .iter()
            .map(|p| ProjectItem {
                label: remap(p.label),
                deep: p.deep,
            })
            .collect();
        Some(Plan::Project {
            input: Box::new(Plan::SelectDb {
                pattern: pruned.clone(),
                sl,
            }),
            pattern: pruned,
            pl,
            anchor_root: true,
        })
    }
}

/// Select→project fusion: a `Project` directly over a `SelectDb` with
/// the *same* pattern and root anchoring becomes one
/// [`Plan::SelectProject`]. The fused operator matches the pattern once
/// per database and projects each binding's witness tree immediately —
/// byte-identical to the unfused pair, which re-matches the identical
/// pattern against its own witness trees.
pub struct SelectProjectFuseRule;

impl Rule for SelectProjectFuseRule {
    fn name(&self) -> &'static str {
        "select-project-fuse"
    }

    fn apply(&self, plan: &Plan) -> Option<Plan> {
        let Plan::Project {
            input,
            pattern,
            pl,
            anchor_root: true,
        } = plan
        else {
            return None;
        };
        let Plan::SelectDb {
            pattern: sel_pattern,
            sl,
        } = input.as_ref()
        else {
            return None;
        };
        if sel_pattern != pattern {
            return None;
        }
        Some(Plan::SelectProject {
            pattern: pattern.clone(),
            sl: sl.clone(),
            pl: pl.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_query, translate};
    use tax::pattern::PatternTree;

    const QUERY1: &str = r#"
        FOR $a IN distinct-values(document("bib.xml")//author)
        RETURN <authorpubs>
          {$a}
          { FOR $b IN document("bib.xml")//article
            WHERE $a = $b/author
            RETURN $b/title }
        </authorpubs>
    "#;

    fn naive(query: &str) -> Plan {
        translate(&parse_query(query).unwrap()).unwrap()
    }

    #[test]
    fn standard_rules_fire_on_query1_in_order() {
        let (plan, trace) = optimize(naive(QUERY1));
        assert!(trace.fired("groupby-rewrite"), "{:?}", trace.firings);
        assert!(trace.fired("projection-prune"), "{:?}", trace.firings);
        assert!(trace.fired("select-project-fuse"), "{:?}", trace.firings);
        // The fused plan has no bare SelectDb or Project-over-SelectDb
        // left on the grouping input side.
        let text = plan.explain();
        assert!(text.contains("SelectProject"), "{text}");
        assert!(!text.contains("LeftOuterJoinDb"), "{text}");
    }

    #[test]
    fn fixpoint_terminates_and_trace_renders() {
        let (_, trace) = optimize(naive(QUERY1));
        assert!(trace.passes < MAX_PASSES, "did not converge");
        let rendered = trace.render();
        assert!(rendered.contains("pass 1: groupby-rewrite"), "{rendered}");
    }

    const QUERY_COUNT: &str = r#"
        FOR $a IN distinct-values(document("bib.xml")//author)
        LET $t := document("bib.xml")//article[author = $a]/title
        RETURN <authorpubs> {$a} {count($t)} </authorpubs>
    "#;

    #[test]
    fn rollup_fuse_fires_on_the_count_pipeline() {
        let (plan, trace) = optimize(naive(QUERY_COUNT));
        assert!(trace.fired("groupby-rewrite"), "{:?}", trace.firings);
        assert!(trace.fired("rollup-fuse"), "{:?}", trace.firings);
        let text = plan.explain();
        assert!(text.contains("Rollup Count"), "{text}");
        assert!(!text.contains("GroupBy"), "{text}");
        assert!(!text.contains("Aggregate"), "{text}");
        // Both fire in the first pass, grouping rewrite before fusion.
        let order: Vec<&str> = trace.firings.iter().map(|f| f.rule).collect();
        let gb = order.iter().position(|r| *r == "groupby-rewrite").unwrap();
        let ru = order.iter().position(|r| *r == "rollup-fuse").unwrap();
        assert!(gb < ru, "{order:?}");
    }

    #[test]
    fn rollup_fuse_skips_plans_that_keep_the_group_trees() {
        // QUERY1 groups without aggregating: its projection extracts the
        // member titles through TAX_group_subroot, so the group trees
        // are consumed and fusion must not fire.
        let (plan, trace) = optimize(naive(QUERY1));
        assert!(!trace.fired("rollup-fuse"), "{:?}", trace.firings);
        assert!(plan.explain().contains("GroupBy"));
    }

    #[test]
    fn materializing_optimizer_keeps_aggregate_over_groupby() {
        let (plan, trace) = Optimizer::materializing().optimize(naive(QUERY_COUNT));
        assert!(trace.fired("groupby-rewrite"));
        assert!(!trace.fired("rollup-fuse"));
        let text = plan.explain();
        assert!(text.contains("Aggregate Count"), "{text}");
        assert!(text.contains("GroupBy"), "{text}");
    }

    #[test]
    fn rollup_fuse_refuses_an_ordered_groupby() {
        // Inject an ordering list into the fused pair's GroupBy: the
        // rollup's running floating-point folds are only bit-identical
        // in witness arrival order, so the rule must back off.
        let naive_plan = naive(QUERY_COUNT);
        let (plan, _) =
            Optimizer::with_rules(vec![Box::new(GroupByRewriteRule)]).optimize(naive_plan);
        fn add_ordering(plan: Plan) -> Plan {
            if let Plan::GroupBy {
                input,
                pattern,
                basis,
                ..
            } = plan
            {
                let label = basis[0].label;
                return Plan::GroupBy {
                    input,
                    pattern,
                    basis,
                    ordering: vec![tax::ops::groupby::GroupOrder {
                        label,
                        direction: tax::ops::groupby::Direction::Ascending,
                    }],
                };
            }
            map_children(plan, &mut add_ordering)
        }
        let ordered = add_ordering(plan);
        let (fused, trace) =
            Optimizer::with_rules(vec![Box::new(RollupFuseRule)]).optimize(ordered);
        assert!(!trace.fired("rollup-fuse"), "{:?}", trace.firings);
        assert!(fused.explain().contains("GroupBy"));
    }

    const QUERY_CUBE: &str = r#"
        FOR $b IN document("bib.xml")//article
        CUBE BY $b/journal, $b/year, $b/author
        RETURN <pubs> {count($b/title)} </pubs>
    "#;

    #[test]
    fn cube_fuse_collapses_the_lattice_union() {
        let (plan, trace) = optimize(naive(QUERY_CUBE));
        assert!(trace.fired("cube-fuse"), "{:?}", trace.firings);
        assert!(!trace.fired("rollup-fuse"), "{:?}", trace.firings);
        let text = plan.explain();
        assert!(text.contains("Cube Count"), "{text}");
        assert!(text.contains("levels=3"), "{text}");
        assert!(!text.contains("Union"), "{text}");
        assert!(!text.contains("GroupBy"), "{text}");
        assert!(!text.contains("Aggregate"), "{text}");
        // The shared scan below the cube still gets select/project fused.
        assert!(text.contains("SelectProject"), "{text}");
    }

    #[test]
    fn materializing_optimizer_keeps_the_lattice_union() {
        let (plan, trace) = Optimizer::materializing().optimize(naive(QUERY_CUBE));
        assert!(!trace.fired("cube-fuse"), "{:?}", trace.firings);
        let text = plan.explain();
        assert!(text.contains("Union (3 branches)"), "{text}");
        assert_eq!(text.matches("GroupBy").count(), 3, "{text}");
        assert!(!text.contains("Cube"), "{text}");
    }

    #[test]
    fn cube_fuse_degrades_to_per_branch_rollups_when_a_guard_fails() {
        // Order one branch's GroupBy: cube-fuse must back off entirely,
        // and rollup-fuse then fuses the still-unordered branches — the
        // graceful-degradation path.
        fn order_first_level(plan: Plan) -> Plan {
            if let Plan::GroupBy {
                input,
                pattern,
                basis,
                ordering,
            } = plan
            {
                let ordering = if basis.len() == 1 {
                    vec![tax::ops::groupby::GroupOrder {
                        label: basis[0].label,
                        direction: tax::ops::groupby::Direction::Ascending,
                    }]
                } else {
                    ordering
                };
                return Plan::GroupBy {
                    input,
                    pattern,
                    basis,
                    ordering,
                };
            }
            map_children(plan, &mut order_first_level)
        }
        let (plan, trace) = optimize(order_first_level(naive(QUERY_CUBE)));
        assert!(!trace.fired("cube-fuse"), "{:?}", trace.firings);
        assert!(trace.fired("rollup-fuse"), "{:?}", trace.firings);
        let text = plan.explain();
        assert!(text.contains("Union (3 branches)"), "{text}");
        assert_eq!(text.matches("Rollup Count").count(), 2, "{text}");
        assert_eq!(text.matches("GroupBy").count(), 1, "{text}");
    }

    #[test]
    fn cube_fuse_requires_prefix_bases_and_shared_scans() {
        let Plan::Rename { input, .. } = naive(QUERY_CUBE) else {
            panic!()
        };
        let Plan::Union { inputs } = *input else {
            panic!()
        };
        assert!(CubeFuseRule
            .apply(&Plan::Union {
                inputs: inputs.clone()
            })
            .is_some());
        // Dropping the middle level breaks the prefix chain.
        let gappy = vec![inputs[0].clone(), inputs[2].clone()];
        assert!(CubeFuseRule.apply(&Plan::Union { inputs: gappy }).is_none());
        // A single branch is not a lattice.
        let single = vec![inputs[2].clone()];
        assert!(CubeFuseRule
            .apply(&Plan::Union { inputs: single })
            .is_none());
        // Reordered levels are not a prefix chain either.
        let mut reversed = inputs;
        reversed.reverse();
        assert!(CubeFuseRule
            .apply(&Plan::Union { inputs: reversed })
            .is_none());
    }

    #[test]
    fn prune_drops_doc_root_and_remaps_labels() {
        // Project(SelectDb) over [$1:doc_root -ad-> $2:article -pc-> $3:author].
        let mut p = PatternTree::with_root(Pred::tag(DOC_ROOT));
        let art = p.add_child(p.root(), Axis::Descendant, Pred::tag("article"));
        let auth = p.add_child(art, Axis::Child, Pred::tag("author"));
        let plan = Plan::Project {
            input: Box::new(Plan::SelectDb {
                pattern: p.clone(),
                sl: vec![art],
            }),
            pattern: p,
            pl: vec![ProjectItem::deep(auth)],
            anchor_root: true,
        };
        let pruned = ProjectionPruneRule.apply(&plan).expect("rule applies");
        let Plan::Project {
            input, pattern, pl, ..
        } = &pruned
        else {
            panic!("still a Project");
        };
        assert_eq!(pattern.len(), 2, "doc_root dropped");
        assert!(matches!(&pattern.node(pattern.root()).pred, Pred::Tag(t) if t == "article"));
        assert_eq!(pl[0].label, 1, "author label remapped 2 -> 1");
        let Plan::SelectDb { sl, .. } = input.as_ref() else {
            panic!("input not SelectDb");
        };
        assert_eq!(sl, &[0], "article label remapped 1 -> 0");
        // No second application: the new root is not doc_root.
        assert!(ProjectionPruneRule.apply(&pruned).is_none());
    }

    #[test]
    fn prune_refuses_referenced_or_constrained_roots() {
        let mut p = PatternTree::with_root(Pred::tag(DOC_ROOT));
        let art = p.add_child(p.root(), Axis::Descendant, Pred::tag("article"));
        // Root referenced by the projection list: keep it.
        let referencing = Plan::Project {
            input: Box::new(Plan::SelectDb {
                pattern: p.clone(),
                sl: vec![art],
            }),
            pattern: p.clone(),
            pl: vec![ProjectItem::shallow(p.root()), ProjectItem::deep(art)],
            anchor_root: true,
        };
        assert!(ProjectionPruneRule.apply(&referencing).is_none());
        // pc edge to the child: the root constrains depth, keep it.
        let mut pc = PatternTree::with_root(Pred::tag(DOC_ROOT));
        let dbl = pc.add_child(pc.root(), Axis::Child, Pred::tag("dblp"));
        let strict = Plan::Project {
            input: Box::new(Plan::SelectDb {
                pattern: pc.clone(),
                sl: vec![dbl],
            }),
            pattern: pc,
            pl: vec![ProjectItem::deep(dbl)],
            anchor_root: true,
        };
        assert!(ProjectionPruneRule.apply(&strict).is_none());
    }

    #[test]
    fn fuse_requires_identical_patterns() {
        let mut p = PatternTree::with_root(Pred::tag("article"));
        let auth = p.add_child(p.root(), Axis::Child, Pred::tag("author"));
        let fusable = Plan::Project {
            input: Box::new(Plan::SelectDb {
                pattern: p.clone(),
                sl: vec![auth],
            }),
            pattern: p.clone(),
            pl: vec![ProjectItem::deep(auth)],
            anchor_root: true,
        };
        assert!(matches!(
            SelectProjectFuseRule.apply(&fusable),
            Some(Plan::SelectProject { .. })
        ));
        let mut other = p.clone();
        other.add_child(other.root(), Axis::Child, Pred::tag("year"));
        let mismatched = Plan::Project {
            input: Box::new(Plan::SelectDb {
                pattern: other,
                sl: vec![auth],
            }),
            pattern: p,
            pl: vec![ProjectItem::deep(auth)],
            anchor_root: true,
        };
        assert!(SelectProjectFuseRule.apply(&mismatched).is_none());
    }

    #[test]
    fn direct_style_plans_pass_through_untouched() {
        // A plan with no applicable shapes is returned structurally
        // unchanged with an empty trace.
        let p = {
            let mut p = PatternTree::with_root(Pred::tag("article"));
            p.add_child(p.root(), Axis::Child, Pred::tag("author"));
            p
        };
        let plan = Plan::SelectDb {
            pattern: p,
            sl: vec![0],
        };
        let before = plan.explain();
        let (after, trace) = optimize(plan);
        assert_eq!(after.explain(), before);
        assert!(trace.firings.is_empty());
        assert_eq!(trace.passes, 1);
    }

    // === Grouping-rewrite (Sec. 4.1) detection and plan shape ===

    /// Run only the grouping rewrite, asserting it fires.
    fn grouping_rewritten(q: &str) -> Plan {
        let (plan, trace) =
            Optimizer::with_rules(vec![Box::new(GroupByRewriteRule)]).optimize(naive(q));
        assert!(trace.fired("groupby-rewrite"), "rewrite must fire for {q}");
        plan
    }

    const QUERY2: &str = r#"
        FOR $a IN distinct-values(document("bib.xml")//author)
        LET $t := document("bib.xml")//article[author = $a]/title
        RETURN <authorpubs> {$a} {$t} </authorpubs>
    "#;

    #[test]
    fn query1_rewrites_to_groupby() {
        let plan = grouping_rewritten(QUERY1);
        assert!(plan.uses_groupby());
        assert!(!plan.uses_join(), "the join must be eliminated");
        let text = plan.explain();
        assert!(text.contains("Rename to <authorpubs>"), "{text}");
        assert!(text.contains("GroupBy"), "{text}");
        // Only one database selection remains.
        assert_eq!(text.matches("SelectDb").count(), 1, "{text}");
    }

    #[test]
    fn query1_groupby_matches_fig5b() {
        let plan = grouping_rewritten(QUERY1);
        fn find_groupby(p: &Plan) -> Option<&Plan> {
            match p {
                Plan::GroupBy { .. } => Some(p),
                Plan::Project { input, .. }
                | Plan::DupElim { input, .. }
                | Plan::Aggregate { input, .. }
                | Plan::Rename { input, .. } => find_groupby(input),
                _ => None,
            }
        }
        let Some(Plan::GroupBy { pattern, basis, .. }) = find_groupby(&plan) else {
            panic!("no GroupBy found");
        };
        let s = crate::plan::pattern_summary(pattern);
        // Fig. 5b: article -pc-> author.
        assert_eq!(s, "[$1:article, $1-pc->$2:author]");
        assert_eq!(basis.len(), 1);
        assert_eq!(basis[0], tax::ops::groupby::BasisItem::content(1));
    }

    #[test]
    fn query2_same_groupby_as_query1() {
        // Sec. 4.2: after the rewrite, the GROUPBY obtained is identical
        // in the nested and unnested formulations.
        let p1 = grouping_rewritten(QUERY1).explain();
        let p2 = grouping_rewritten(QUERY2).explain();
        assert_eq!(p1, p2);
    }

    #[test]
    fn projection_only_query_is_not_rewritten() {
        let q = r#"
            FOR $a IN distinct-values(document("bib.xml")//author)
            RETURN <row> {$a} </row>
        "#;
        let (_, trace) =
            Optimizer::with_rules(vec![Box::new(GroupByRewriteRule)]).optimize(naive(q));
        assert!(!trace.fired("groupby-rewrite"));
    }

    #[test]
    fn institution_query_rewrites() {
        let q = r#"
            FOR $i IN distinct-values(document("bib.xml")//institution)
            RETURN <instpubs>
              {$i}
              { FOR $b IN document("bib.xml")//article
                WHERE $i = $b/author/institution
                RETURN $b/title }
            </instpubs>
        "#;
        let plan = grouping_rewritten(q);
        let text = plan.explain();
        assert!(text.contains("GroupBy"), "{text}");
        // Basis is the institution ($3 in the grouping pattern
        // article -pc-> author -pc-> institution).
        assert!(text.contains("$3.content"), "{text}");
    }

    #[test]
    fn subset_violation_blocks_rewrite() {
        // Outer binds editors, inner joins on authors: the outer pattern
        // does not embed into the inner pattern, so no rewrite.
        let q = r#"
            FOR $a IN distinct-values(document("bib.xml")//editor)
            RETURN <x>
              {$a}
              { FOR $b IN document("bib.xml")//article
                WHERE $a = $b/author
                RETURN $b/title }
            </x>
        "#;
        let (_, trace) =
            Optimizer::with_rules(vec![Box::new(GroupByRewriteRule)]).optimize(naive(q));
        assert!(
            !trace.fired("groupby-rewrite"),
            "editor is not in the inner pattern; no rewrite"
        );
    }
}
