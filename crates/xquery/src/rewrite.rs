//! The grouping rewrite of Sec. 4.1 (Phases 1 and 2).
//!
//! **Phase 1 — detection.** A grouping query is recognized when
//!
//! 1. a left outer join is applied on the outcome of a previous selection
//!    and the database, and
//! 2. the left ("outer") pattern tree is a *subset* of the right
//!    ("inner") pattern tree under the closure-mark rule (`pc ⊆ ad`, not
//!    `ad ⊆ pc`) — see [`tax::pattern::PatternTree::subset_embedding`].
//!
//! **Phase 2 — rewrite.** The join pipeline is replaced by
//!
//! 1. a selection + projection producing the collection of bound-subject
//!    trees (the articles, Fig. 9);
//! 2. the `GROUPBY` operator whose pattern is the subject-rooted subtree
//!    of the inner pattern and whose grouping basis is the join value
//!    (`$2.content`, Fig. 5b/5c);
//! 3. (count variant) an aggregation inserting the member count;
//! 4. a final projection extracting the RETURN nodes from the group
//!    trees (Fig. 5d);
//! 5. a rename to the constructed tag.

use crate::plan::Plan;
use tax::ops::aggregate::{AggFunc, UpdateSpec};
use tax::ops::groupby::{BasisItem, Direction, GroupOrder};
use tax::ops::project::ProjectItem;
use tax::pattern::{Axis, PatternNodeId, PatternTree, Pred};

/// Try to rewrite a naive plan into a `GROUPBY` plan. Returns the plan
/// (rewritten or original) and whether the rewrite fired.
///
/// Deprecated: the optimizer has a single entry point now. Use
/// [`crate::opt::optimize`] for the full rule set, or
/// `Optimizer::with_rules(vec![Box::new(GroupByRewriteRule)])` to run
/// only the grouping rewrite; `trace.fired("groupby-rewrite")` replaces
/// the boolean.
#[deprecated(
    since = "0.1.0",
    note = "use xquery::opt::optimize (check trace.fired(\"groupby-rewrite\")) instead"
)]
pub fn rewrite(plan: Plan) -> (Plan, bool) {
    use crate::opt::{GroupByRewriteRule, Optimizer, Rule};
    let (plan, trace) = Optimizer::with_rules(vec![Box::new(GroupByRewriteRule)]).optimize(plan);
    let fired = trace.fired(GroupByRewriteRule.name());
    (plan, fired)
}

/// Phase 1: inspect the plan; on success build the Phase 2 plan.
pub(crate) fn detect(plan: &Plan) -> Option<Plan> {
    let Plan::StitchConstruct {
        outer_pattern,
        outer_label,
        inner: Some(inner),
        inner_extract,
        agg,
        tag,
        ..
    } = plan
    else {
        return None;
    };
    let Plan::LeftOuterJoinDb {
        left,
        left_pattern,
        left_label,
        right_pattern,
        right_label,
        right_sl,
        right_extract,
        order,
    } = inner.as_ref()
    else {
        return None;
    };

    // Phase 1, step 1: the join's left side must be the outcome of a
    // previous selection over the database.
    if !is_selection_chain(left) {
        return None;
    }
    // (Sanity: the stitch's outer and the join's left agree.)
    if left_label != outer_label || left_pattern.len() != outer_pattern.len() {
        return None;
    }

    // Phase 1, step 2: the outer pattern must be a subset of the inner.
    let mapping = left_pattern.subset_embedding(right_pattern)?;
    let join_node = *right_label;
    // The join value must be the outer bound variable's image.
    if mapping[*left_label] != join_node {
        return None;
    }

    // The grouping subject: the adorned bound variable of the inner FOR
    // (from the join's selection list), falling back to the lowest
    // common ancestor of the join node and the extract paths.
    let subject = right_sl.first().copied().or_else(|| {
        lca(
            right_pattern,
            join_node,
            extract_source(right_pattern, inner_extract),
        )
    })?;
    if !right_pattern.is_ancestor(subject, join_node) {
        return None;
    }

    if !right_pattern.is_ancestor(subject, *right_extract) {
        return None;
    }
    Some(build_groupby_plan(
        right_pattern,
        subject,
        join_node,
        *right_extract,
        agg.clone(),
        *order,
        tag,
    ))
}

/// Is this plan a `SelectDb` possibly wrapped in projections / duplicate
/// eliminations — "the outcome of a previous selection"?
fn is_selection_chain(plan: &Plan) -> bool {
    match plan {
        Plan::SelectDb { .. } | Plan::SelectProject { .. } => true,
        Plan::Project { input, .. } | Plan::DupElim { input, .. } => is_selection_chain(input),
        _ => false,
    }
}

/// Phase 2: the GROUPBY plan.
#[allow(clippy::too_many_arguments)]
fn build_groupby_plan(
    right_pattern: &PatternTree,
    subject: PatternNodeId,
    join_node: PatternNodeId,
    extract: PatternNodeId,
    agg: Option<(AggFunc, String)>,
    order: Option<(PatternNodeId, Direction)>,
    tag: &str,
) -> Plan {
    // Step 1: the initial pattern tree — the bound variable with its path
    // from the document root (Fig. 5a). Selection with SL = subject,
    // projection with PL = subject*.
    let (subject_path, path_map) = prefix_path_pattern(right_pattern, subject);
    let subject_in_path = path_map[subject];
    let input_plan = Plan::Project {
        input: Box::new(Plan::SelectDb {
            pattern: subject_path.clone(),
            sl: vec![subject_in_path],
        }),
        pattern: subject_path,
        pl: vec![ProjectItem::deep(subject_in_path)],
        anchor_root: true,
    };

    // Step 2: the GROUPBY input pattern — the subject-rooted subtree of
    // the inner pattern restricted to the join path (Fig. 5b), plus the
    // ordering path when the user requested sorting; grouping basis = the
    // join value's content.
    let mut gb_pattern = PatternTree::with_root(right_pattern.node(subject).pred.clone());
    let mut gb_map: Vec<Option<PatternNodeId>> = vec![None; right_pattern.len()];
    gb_map[subject] = Some(gb_pattern.root());
    let basis_node = graft_into(
        &mut gb_pattern,
        right_pattern,
        subject,
        join_node,
        &mut gb_map,
    );
    let ordering: Vec<GroupOrder> = match order {
        None => vec![],
        Some((onode, dir)) => {
            let label = graft_into(&mut gb_pattern, right_pattern, subject, onode, &mut gb_map);
            vec![GroupOrder {
                label,
                direction: dir,
            }]
        }
    };
    let group_plan = Plan::GroupBy {
        input: Box::new(input_plan),
        pattern: gb_pattern,
        basis: vec![BasisItem::content(basis_node)],
        ordering,
    };

    // Step 3/4: the final projection over group trees (Fig. 5d); for the
    // count variant, an aggregation first inserts the member count.
    let subject_tag = right_pattern
        .node(subject)
        .pred
        .required_tag()
        .unwrap_or("*")
        .to_owned();
    let join_tag = right_pattern
        .node(join_node)
        .pred
        .required_tag()
        .unwrap_or("*")
        .to_owned();

    let mut fp = PatternTree::with_root(Pred::tag(tax::tags::GROUP_ROOT));
    let basis = fp.add_child(fp.root(), Axis::Child, Pred::tag(tax::tags::GROUPING_BASIS));
    let key = fp.add_child(basis, Axis::Child, Pred::tag(join_tag));
    let pl = vec![ProjectItem::shallow(fp.root()), ProjectItem::deep(key)];

    let (plan_before_project, fp, pl) = if let Some((func, agg_tag)) = agg {
        // Aggregate over the extracted values within each group:
        // TAX_group_root / subroot / subject / … / extract.
        let mut agg_pattern = PatternTree::with_root(Pred::tag(tax::tags::GROUP_ROOT));
        let subroot = agg_pattern.add_child(
            agg_pattern.root(),
            Axis::Child,
            Pred::tag(tax::tags::GROUP_SUBROOT),
        );
        let member = agg_pattern.add_child(subroot, Axis::Child, Pred::tag(subject_tag));
        let mut prev = member;
        for pid in path_between(right_pattern, subject, extract) {
            prev = agg_pattern.add_child(
                prev,
                right_pattern.node(pid).axis,
                right_pattern.node(pid).pred.clone(),
            );
        }
        let agg_plan = Plan::Aggregate {
            input: Box::new(group_plan),
            pattern: agg_pattern,
            func,
            of: prev,
            new_tag: agg_tag.clone(),
            spec: UpdateSpec::AfterLastChild(0),
        };
        let mut fp = fp;
        let agg_node = fp.add_child(fp.root(), Axis::Child, Pred::tag(agg_tag));
        let mut pl = pl;
        pl.push(ProjectItem::deep(agg_node));
        (agg_plan, fp, pl)
    } else {
        // Extract the RETURN node from inside the group members:
        // subroot -pc-> subject -…-> extract.
        let mut fp = fp;
        let subroot = fp.add_child(fp.root(), Axis::Child, Pred::tag(tax::tags::GROUP_SUBROOT));
        let member = fp.add_child(subroot, Axis::Child, Pred::tag(subject_tag));
        let mut pl = pl;
        let mut prev = member;
        for pid in path_between(right_pattern, subject, extract) {
            prev = fp.add_child(
                prev,
                right_pattern.node(pid).axis,
                right_pattern.node(pid).pred.clone(),
            );
        }
        pl.push(ProjectItem::deep(prev));
        (group_plan, fp, pl)
    };

    Plan::Rename {
        input: Box::new(Plan::Project {
            input: Box::new(plan_before_project),
            pattern: fp,
            pl,
            anchor_root: true,
        }),
        tag: tag.to_owned(),
    }
}

/// The pattern consisting of the path root → … → `target` only, plus the
/// node mapping.
fn prefix_path_pattern(
    pattern: &PatternTree,
    target: PatternNodeId,
) -> (PatternTree, Vec<PatternNodeId>) {
    let mut chain = vec![target];
    let mut cur = target;
    while let Some(parent) = pattern.node(cur).parent {
        chain.push(parent);
        cur = parent;
    }
    chain.reverse();
    let mut out = PatternTree::with_root(pattern.node(chain[0]).pred.clone());
    let mut mapping = vec![usize::MAX; pattern.len()];
    mapping[chain[0]] = out.root();
    let mut prev = out.root();
    for &pid in &chain[1..] {
        prev = out.add_child(prev, pattern.node(pid).axis, pattern.node(pid).pred.clone());
        mapping[pid] = prev;
    }
    (out, mapping)
}

/// Node ids strictly between `from` (exclusive) and `to` (inclusive),
/// walking parent links from `to`.
fn path_between(
    pattern: &PatternTree,
    from: PatternNodeId,
    to: PatternNodeId,
) -> Vec<PatternNodeId> {
    let mut path = vec![to];
    let mut cur = to;
    while let Some(parent) = pattern.node(cur).parent {
        if parent == from {
            path.reverse();
            return path;
        }
        path.push(parent);
        cur = parent;
    }
    // `from` is not an ancestor; return just `to` (callers guard this).
    vec![to]
}

/// Graft the `from`→`to` path of `src` into `dst` (which mirrors the
/// subtree rooted at `from`), reusing already-grafted nodes via `map`.
/// Returns `to`'s node in `dst`.
fn graft_into(
    dst: &mut PatternTree,
    src: &PatternTree,
    from: PatternNodeId,
    to: PatternNodeId,
    map: &mut [Option<PatternNodeId>],
) -> PatternNodeId {
    let mut last = map[from].expect("root mapped");
    let mut prev = last;
    for pid in path_between(src, from, to) {
        let node = match map[pid] {
            Some(n) => n,
            None => {
                let n = dst.add_child(prev, src.node(pid).axis, src.node(pid).pred.clone());
                map[pid] = Some(n);
                n
            }
        };
        prev = node;
        last = node;
    }
    last
}

/// First extract node's id in the right pattern (used by the LCA
/// fallback). The stitch extract ids index the *stitch* pattern, so the
/// fallback conservatively picks the right pattern's last leaf.
fn extract_source(pattern: &PatternTree, _extract: &[(PatternNodeId, bool)]) -> PatternNodeId {
    pattern
        .iter()
        .filter(|(_, n)| n.children.is_empty())
        .map(|(id, _)| id)
        .last()
        .unwrap_or(0)
}

/// Lowest common ancestor of two pattern nodes.
fn lca(pattern: &PatternTree, a: PatternNodeId, b: PatternNodeId) -> Option<PatternNodeId> {
    let mut ancestors = std::collections::HashSet::new();
    let mut cur = Some(a);
    while let Some(n) = cur {
        ancestors.insert(n);
        cur = pattern.node(n).parent;
    }
    let mut cur = Some(b);
    while let Some(n) = cur {
        if ancestors.contains(&n) {
            return Some(n);
        }
        cur = pattern.node(n).parent;
    }
    None
}

#[cfg(test)]
mod tests {
    // The tests exercise the deprecated single-rule entry point on
    // purpose: it must keep working until it is removed.
    #![allow(deprecated)]

    use super::*;
    use crate::{parse_query, translate};

    const QUERY1: &str = r#"
        FOR $a IN distinct-values(document("bib.xml")//author)
        RETURN <authorpubs>
          {$a}
          { FOR $b IN document("bib.xml")//article
            WHERE $a = $b/author
            RETURN $b/title }
        </authorpubs>
    "#;

    const QUERY2: &str = r#"
        FOR $a IN distinct-values(document("bib.xml")//author)
        LET $t := document("bib.xml")//article[author = $a]/title
        RETURN <authorpubs> {$a} {$t} </authorpubs>
    "#;

    fn rewritten(q: &str) -> Plan {
        let naive = translate(&parse_query(q).unwrap()).unwrap();
        let (plan, did) = rewrite(naive);
        assert!(did, "rewrite must fire for {q}");
        plan
    }

    #[test]
    fn query1_rewrites_to_groupby() {
        let plan = rewritten(QUERY1);
        assert!(plan.uses_groupby());
        assert!(!plan.uses_join(), "the join must be eliminated");
        let text = plan.explain();
        assert!(text.contains("Rename to <authorpubs>"), "{text}");
        assert!(text.contains("GroupBy"), "{text}");
        // Only one database selection remains.
        assert_eq!(text.matches("SelectDb").count(), 1, "{text}");
    }

    #[test]
    fn query1_groupby_matches_fig5b() {
        let plan = rewritten(QUERY1);
        // Walk to the GroupBy node.
        fn find_groupby(p: &Plan) -> Option<&Plan> {
            match p {
                Plan::GroupBy { .. } => Some(p),
                Plan::Project { input, .. }
                | Plan::DupElim { input, .. }
                | Plan::Aggregate { input, .. }
                | Plan::Rename { input, .. } => find_groupby(input),
                _ => None,
            }
        }
        let Some(Plan::GroupBy { pattern, basis, .. }) = find_groupby(&plan) else {
            panic!("no GroupBy found");
        };
        let s = crate::plan::pattern_summary(pattern);
        // Fig. 5b: article -pc-> author.
        assert_eq!(s, "[$1:article, $1-pc->$2:author]");
        assert_eq!(basis.len(), 1);
        assert_eq!(basis[0], tax::ops::groupby::BasisItem::content(1));
    }

    #[test]
    fn query2_same_groupby_as_query1() {
        // Sec. 4.2: after the rewrite, the GROUPBY obtained is identical
        // in the nested and unnested formulations.
        let p1 = rewritten(QUERY1).explain();
        let p2 = rewritten(QUERY2).explain();
        assert_eq!(p1, p2);
    }

    #[test]
    fn count_variant_inserts_aggregate() {
        let q = r#"
            FOR $a IN distinct-values(document("bib.xml")//author)
            LET $t := document("bib.xml")//article[author = $a]/title
            RETURN <authorpubs> {$a} {count($t)} </authorpubs>
        "#;
        let plan = rewritten(q);
        let text = plan.explain();
        assert!(text.contains("Aggregate Count"), "{text}");
        assert!(text.contains("GroupBy"), "{text}");
    }

    #[test]
    fn projection_only_query_is_not_rewritten() {
        let q = r#"
            FOR $a IN distinct-values(document("bib.xml")//author)
            RETURN <row> {$a} </row>
        "#;
        let naive = translate(&parse_query(q).unwrap()).unwrap();
        let (_plan, did) = rewrite(naive);
        assert!(!did);
    }

    #[test]
    fn institution_query_rewrites() {
        let q = r#"
            FOR $i IN distinct-values(document("bib.xml")//institution)
            RETURN <instpubs>
              {$i}
              { FOR $b IN document("bib.xml")//article
                WHERE $i = $b/author/institution
                RETURN $b/title }
            </instpubs>
        "#;
        let plan = rewritten(q);
        let text = plan.explain();
        assert!(text.contains("GroupBy"), "{text}");
        // Basis is the institution ($3 in the grouping pattern
        // article -pc-> author -pc-> institution).
        assert!(text.contains("$3.content"), "{text}");
    }

    #[test]
    fn subset_violation_blocks_rewrite() {
        // Outer binds titles, inner joins on authors: the outer pattern
        // (doc_root ad title) does embed into the inner pattern only if a
        // title node exists there; craft a query where it does not.
        let q = r#"
            FOR $a IN distinct-values(document("bib.xml")//editor)
            RETURN <x>
              {$a}
              { FOR $b IN document("bib.xml")//article
                WHERE $a = $b/author
                RETURN $b/title }
            </x>
        "#;
        let naive = translate(&parse_query(q).unwrap()).unwrap();
        let (_plan, did) = rewrite(naive);
        assert!(!did, "editor is not in the inner pattern; no rewrite");
    }
}
