//! Logical TAX plans.
//!
//! A [`Plan`] is a tree of algebra operators over the stored database.
//! The translator emits the *naive* plan of Sec. 4.1; the rewriter
//! replaces the join pipeline with a `GROUPBY` pipeline. The evaluator
//! (in the `timber` crate) interprets either.

use std::fmt::Write;
use tax::ops::aggregate::{AggFunc, UpdateSpec};
use tax::ops::groupby::{BasisItem, Direction, GroupOrder};
use tax::ops::project::ProjectItem;
use tax::pattern::{PatternNodeId, PatternTree};

/// A logical operator tree.
#[derive(Debug, Clone)]
pub enum Plan {
    /// Selection over the stored database: pattern + adornment list.
    SelectDb {
        /// Pattern to match.
        pattern: PatternTree,
        /// Adorned labels (whole subtrees kept).
        sl: Vec<PatternNodeId>,
    },
    /// Projection of a collection.
    Project {
        /// Input plan.
        input: Box<Plan>,
        /// Pattern to match per tree.
        pattern: PatternTree,
        /// Projection list.
        pl: Vec<ProjectItem>,
        /// Whether the pattern root binds only tree roots.
        anchor_root: bool,
    },
    /// Fused selection + projection over the stored database (the
    /// optimizer's select→project fusion): one pattern match serves
    /// both operators, so each binding's witness tree is projected
    /// without materializing the intermediate selected collection.
    SelectProject {
        /// Shared pattern (selection and projection agree on it).
        pattern: PatternTree,
        /// Adorned labels (whole subtrees kept in the witness).
        sl: Vec<PatternNodeId>,
        /// Projection list.
        pl: Vec<ProjectItem>,
    },
    /// Duplicate elimination on a bound node's content.
    DupElim {
        /// Input plan.
        input: Box<Plan>,
        /// Pattern to match per tree.
        pattern: PatternTree,
        /// The label whose content is the key.
        by: PatternNodeId,
    },
    /// The naive parse's left outer join against the database (Fig. 8).
    LeftOuterJoinDb {
        /// Left input plan (the outer bindings).
        left: Box<Plan>,
        /// Pattern extracting the left join key.
        left_pattern: PatternTree,
        /// Left key label.
        left_label: PatternNodeId,
        /// Right (database) pattern — the "inner" part of the join-plan
        /// pattern tree of Fig. 4b.
        right_pattern: PatternTree,
        /// Right key label.
        right_label: PatternNodeId,
        /// Adornment of right witnesses.
        right_sl: Vec<PatternNodeId>,
        /// The node the nested RETURN extracts (right-pattern label).
        right_extract: PatternNodeId,
        /// The user's ORDER BY, as a right-pattern label and direction
        /// (the rewriter turns this into the GROUPBY ordering list).
        order: Option<(PatternNodeId, Direction)>,
    },
    /// The grouping operator (Sec. 3).
    GroupBy {
        /// Input plan.
        input: Box<Plan>,
        /// Grouping pattern (Fig. 5b).
        pattern: PatternTree,
        /// Grouping basis.
        basis: Vec<BasisItem>,
        /// Ordering list.
        ordering: Vec<GroupOrder>,
    },
    /// Aggregation with update specification (Sec. 4.3).
    Aggregate {
        /// Input plan.
        input: Box<Plan>,
        /// Pattern to match per tree.
        pattern: PatternTree,
        /// Aggregate function.
        func: AggFunc,
        /// Label whose matched contents are aggregated.
        of: PatternNodeId,
        /// Name of the element carrying the computed value.
        new_tag: String,
        /// Where to insert it.
        spec: UpdateSpec,
    },
    /// Fused grouped aggregation (the `rollup-fuse` rewrite of
    /// `Aggregate` over `GroupBy`): hash-accumulate per-basis-key
    /// aggregate state directly from the input scan, never building the
    /// grouped member trees. Emits `TAX_group_root { TAX_grouping_basis
    /// {…}, <new_tag>value</new_tag> }` per group in first-witness
    /// order — byte-identical to the materialized pair for any consumer
    /// that never binds `TAX_group_subroot`.
    Rollup {
        /// Input plan.
        input: Box<Plan>,
        /// Grouping pattern (as in `GroupBy`).
        pattern: PatternTree,
        /// Grouping basis.
        basis: Vec<BasisItem>,
        /// The member-side aggregate pattern, re-anchored at the input
        /// trees (the `Aggregate` pattern's subtree below the member).
        member_pattern: PatternTree,
        /// Label in `member_pattern` whose contents are aggregated.
        of: PatternNodeId,
        /// Aggregate function.
        func: AggFunc,
        /// Name of the element carrying the computed value.
        new_tag: String,
        /// Flat output shape: the rollup also absorbed the downstream
        /// projection, emitting `TAX_group_root { <key>, <new_tag>v
        /// </new_tag> }` with no basis wrapper and dropping groups whose
        /// aggregate is undefined (the projection would have dropped
        /// them via the unbound optional aggregate child).
        flat: bool,
    },
    /// Collection concatenation: the inputs' outputs in order. The cube
    /// translation emits one branch per lattice level; `cube-fuse`
    /// replaces the whole union with a single [`Plan::Cube`] scan when
    /// its guards hold.
    Union {
        /// The branches, in output order.
        inputs: Vec<Plan>,
    },
    /// The grouping lattice (the `cube-fuse` rewrite of a `Union` of
    /// per-level `Project ∘ Aggregate ∘ GroupBy` pipelines): one scan
    /// computes the aggregate at **every** prefix of the basis,
    /// emitting per level the flat rollup shape
    /// `TAX_group_root { key…, <new_tag>value</new_tag> }` with a
    /// leading `TAX_cube_level` marker child, levels coarsest-first.
    Cube {
        /// Input plan (shared by every level).
        input: Box<Plan>,
        /// Grouping pattern containing every dimension.
        pattern: PatternTree,
        /// The full ordered basis; level `k` groups on `basis[..k]`.
        basis: Vec<BasisItem>,
        /// The member-side aggregate pattern, re-anchored at the input
        /// trees (as in [`Plan::Rollup`]).
        member_pattern: PatternTree,
        /// Label in `member_pattern` whose contents are aggregated.
        of: PatternNodeId,
        /// Aggregate function.
        func: AggFunc,
        /// Name of the element carrying the computed value.
        new_tag: String,
    },
    /// Root renaming.
    Rename {
        /// Input plan.
        input: Box<Plan>,
        /// The new root tag.
        tag: String,
    },
    /// The RETURN stitching of the naive plan: pair each outer tree with
    /// the inner trees sharing its key (a full outer join on the key,
    /// fused with the final projection and rename), emitting one
    /// constructed element per outer tree.
    StitchConstruct {
        /// The outer collection (distinct bindings).
        outer: Box<Plan>,
        /// Pattern extracting the outer key node.
        outer_pattern: PatternTree,
        /// Outer key label (also the `{$a}` emitted node).
        outer_label: PatternNodeId,
        /// The joined collection carrying the per-binding results; `None`
        /// when the RETURN has no nested part.
        inner: Option<Box<Plan>>,
        /// Pattern over inner trees.
        inner_pattern: PatternTree,
        /// Inner key label.
        inner_label: PatternNodeId,
        /// Labels (and deep flags) of the inner nodes emitted per match,
        /// e.g. the title.
        inner_extract: Vec<(PatternNodeId, bool)>,
        /// `Some((func, tag))`: emit `<tag>{f(values)}</tag>` computed
        /// over the extracted nodes' contents instead of the nodes
        /// themselves (`count($t)`, `sum($t)`, …).
        agg: Option<(AggFunc, String)>,
        /// Order the emitted parts per key by this stitch-pattern node's
        /// content (the inner FLWR's ORDER BY).
        order: Option<(PatternNodeId, Direction)>,
        /// The constructed element name (e.g. `authorpubs`).
        tag: String,
    },
}

impl Plan {
    /// Indented, human-readable plan rendering (for tests and EXPLAIN
    /// output).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            Plan::SelectDb { pattern, sl } => {
                let _ = writeln!(
                    out,
                    "{pad}SelectDb pattern={} SL={:?}",
                    pattern_summary(pattern),
                    sl.iter().map(|l| format!("${}", l + 1)).collect::<Vec<_>>()
                );
            }
            Plan::SelectProject { pattern, sl, pl } => {
                let pls: Vec<String> = pl
                    .iter()
                    .map(|p| format!("${}{}", p.label + 1, if p.deep { "*" } else { "" }))
                    .collect();
                let _ = writeln!(
                    out,
                    "{pad}SelectProject pattern={} SL={:?} PL={:?}",
                    pattern_summary(pattern),
                    sl.iter().map(|l| format!("${}", l + 1)).collect::<Vec<_>>(),
                    pls
                );
            }
            Plan::Project {
                input,
                pattern,
                pl,
                anchor_root,
            } => {
                let pls: Vec<String> = pl
                    .iter()
                    .map(|p| format!("${}{}", p.label + 1, if p.deep { "*" } else { "" }))
                    .collect();
                let _ = writeln!(
                    out,
                    "{pad}Project pattern={} PL={:?} anchor_root={anchor_root}",
                    pattern_summary(pattern),
                    pls
                );
                input.explain_into(out, depth + 1);
            }
            Plan::DupElim { input, pattern, by } => {
                let _ = writeln!(
                    out,
                    "{pad}DupElim pattern={} by=${}",
                    pattern_summary(pattern),
                    by + 1
                );
                input.explain_into(out, depth + 1);
            }
            Plan::LeftOuterJoinDb {
                left,
                left_label,
                right_pattern,
                right_label,
                right_sl,
                order,
                ..
            } => {
                let ord = order
                    .map(|(l, d)| format!(" order=${} {:?}", l + 1, d))
                    .unwrap_or_default();
                let _ = writeln!(
                    out,
                    "{pad}LeftOuterJoinDb on left.${} = right.${} right={} SL={:?}{ord}",
                    left_label + 1,
                    right_label + 1,
                    pattern_summary(right_pattern),
                    right_sl
                        .iter()
                        .map(|l| format!("${}", l + 1))
                        .collect::<Vec<_>>()
                );
                left.explain_into(out, depth + 1);
            }
            Plan::GroupBy {
                input,
                pattern,
                basis,
                ordering,
            } => {
                let bs: Vec<String> = basis
                    .iter()
                    .map(|b| match &b.attr {
                        Some(a) => format!("${}.{a}", b.label + 1),
                        None => {
                            format!("${}{}.content", b.label + 1, if b.deep { "*" } else { "" })
                        }
                    })
                    .collect();
                let os: Vec<String> = ordering
                    .iter()
                    .map(|o| format!("${} {:?}", o.label + 1, o.direction))
                    .collect();
                let _ = writeln!(
                    out,
                    "{pad}GroupBy pattern={} basis={bs:?} ordering={os:?}",
                    pattern_summary(pattern)
                );
                input.explain_into(out, depth + 1);
            }
            Plan::Aggregate {
                input,
                func,
                of,
                new_tag,
                ..
            } => {
                let _ = writeln!(out, "{pad}Aggregate {func:?}(${}) as <{new_tag}>", of + 1);
                input.explain_into(out, depth + 1);
            }
            Plan::Rollup {
                input,
                pattern,
                basis,
                member_pattern,
                of,
                func,
                new_tag,
                flat,
            } => {
                let bs: Vec<String> = basis
                    .iter()
                    .map(|b| match &b.attr {
                        Some(a) => format!("${}.{a}", b.label + 1),
                        None => {
                            format!("${}{}.content", b.label + 1, if b.deep { "*" } else { "" })
                        }
                    })
                    .collect();
                let _ = writeln!(
                    out,
                    "{pad}Rollup {func:?}(member ${}) as <{new_tag}>{} pattern={} basis={bs:?} member={}",
                    of + 1,
                    if *flat { " flat" } else { "" },
                    pattern_summary(pattern),
                    pattern_summary(member_pattern)
                );
                input.explain_into(out, depth + 1);
            }
            Plan::Union { inputs } => {
                let _ = writeln!(out, "{pad}Union ({} branches)", inputs.len());
                for i in inputs {
                    i.explain_into(out, depth + 1);
                }
            }
            Plan::Cube {
                input,
                pattern,
                basis,
                member_pattern,
                of,
                func,
                new_tag,
            } => {
                let bs: Vec<String> = basis
                    .iter()
                    .map(|b| match &b.attr {
                        Some(a) => format!("${}.{a}", b.label + 1),
                        None => {
                            format!("${}{}.content", b.label + 1, if b.deep { "*" } else { "" })
                        }
                    })
                    .collect();
                let _ = writeln!(
                    out,
                    "{pad}Cube {func:?}(member ${}) as <{new_tag}> levels={} pattern={} basis={bs:?} member={}",
                    of + 1,
                    basis.len(),
                    pattern_summary(pattern),
                    pattern_summary(member_pattern)
                );
                input.explain_into(out, depth + 1);
            }
            Plan::Rename { input, tag } => {
                let _ = writeln!(out, "{pad}Rename to <{tag}>");
                input.explain_into(out, depth + 1);
            }
            Plan::StitchConstruct {
                outer,
                inner,
                outer_label,
                inner_label,
                inner_extract,
                agg,
                order,
                tag,
                ..
            } => {
                let ex: Vec<String> = inner_extract
                    .iter()
                    .map(|(l, d)| format!("${}{}", l + 1, if *d { "*" } else { "" }))
                    .collect();
                let agg_s = agg
                    .as_ref()
                    .map(|(f, t)| format!(" agg={f:?}<{t}>"))
                    .unwrap_or_default();
                let ord_s = order
                    .map(|(l, d)| format!(" order=${} {:?}", l + 1, d))
                    .unwrap_or_default();
                let _ = writeln!(
                    out,
                    "{pad}StitchConstruct <{tag}> key: outer.${} = inner.${} extract={ex:?}{agg_s}{ord_s}",
                    outer_label + 1,
                    inner_label + 1
                );
                outer.explain_into(out, depth + 1);
                if let Some(inner) = inner {
                    inner.explain_into(out, depth + 1);
                }
            }
        }
    }

    /// Does the plan (recursively) contain a `GroupBy` node?
    pub fn uses_groupby(&self) -> bool {
        match self {
            Plan::GroupBy { .. } | Plan::Rollup { .. } | Plan::Cube { .. } => true,
            Plan::SelectDb { .. } | Plan::SelectProject { .. } => false,
            Plan::Project { input, .. }
            | Plan::DupElim { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Rename { input, .. } => input.uses_groupby(),
            Plan::Union { inputs } => inputs.iter().any(Plan::uses_groupby),
            Plan::LeftOuterJoinDb { left, .. } => left.uses_groupby(),
            Plan::StitchConstruct { outer, inner, .. } => {
                outer.uses_groupby() || inner.as_ref().map(|i| i.uses_groupby()).unwrap_or(false)
            }
        }
    }

    /// Does the plan (recursively) contain a `LeftOuterJoinDb` node?
    pub fn uses_join(&self) -> bool {
        match self {
            Plan::LeftOuterJoinDb { .. } => true,
            Plan::SelectDb { .. } | Plan::SelectProject { .. } => false,
            Plan::Project { input, .. }
            | Plan::DupElim { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Rename { input, .. } => input.uses_join(),
            Plan::Union { inputs } => inputs.iter().any(Plan::uses_join),
            Plan::GroupBy { input, .. } | Plan::Rollup { input, .. } | Plan::Cube { input, .. } => {
                input.uses_join()
            }
            Plan::StitchConstruct { outer, inner, .. } => {
                outer.uses_join() || inner.as_ref().map(|i| i.uses_join()).unwrap_or(false)
            }
        }
    }
}

/// One-line pattern rendering: `doc_root -ad-> article -pc-> author`.
pub fn pattern_summary(p: &PatternTree) -> String {
    let mut parts = Vec::new();
    for (id, node) in p.iter() {
        let tag = node.pred.required_tag().unwrap_or("*");
        match node.parent {
            None => parts.push(format!("${}:{tag}", id + 1)),
            Some(parent) => {
                let axis = match node.axis {
                    tax::pattern::Axis::Child => "pc",
                    tax::pattern::Axis::Descendant => "ad",
                };
                parts.push(format!("${}-{axis}->${}:{tag}", parent + 1, id + 1));
            }
        }
    }
    format!("[{}]", parts.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tax::pattern::{Axis, Pred};

    fn sample_pattern() -> PatternTree {
        let mut p = PatternTree::with_root(Pred::tag("doc_root"));
        let art = p.add_child(p.root(), Axis::Descendant, Pred::tag("article"));
        p.add_child(art, Axis::Child, Pred::tag("author"));
        p
    }

    #[test]
    fn summary_renders_edges() {
        let s = pattern_summary(&sample_pattern());
        assert_eq!(s, "[$1:doc_root, $1-ad->$2:article, $2-pc->$3:author]");
    }

    #[test]
    fn explain_renders_nested_plans() {
        let plan = Plan::Rename {
            input: Box::new(Plan::GroupBy {
                input: Box::new(Plan::SelectDb {
                    pattern: sample_pattern(),
                    sl: vec![1],
                }),
                pattern: sample_pattern(),
                basis: vec![BasisItem::content(2)],
                ordering: vec![],
            }),
            tag: "authorpubs".into(),
        };
        let text = plan.explain();
        assert!(text.contains("Rename to <authorpubs>"));
        assert!(text.contains("GroupBy"));
        assert!(text.contains("SelectDb"));
        assert!(text.contains("$3.content"));
        // Indentation increases inward.
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[1].starts_with("  "));
        assert!(lines[2].starts_with("    "));
    }

    #[test]
    fn uses_flags() {
        let gb = Plan::GroupBy {
            input: Box::new(Plan::SelectDb {
                pattern: sample_pattern(),
                sl: vec![],
            }),
            pattern: sample_pattern(),
            basis: vec![],
            ordering: vec![],
        };
        assert!(gb.uses_groupby());
        assert!(!gb.uses_join());
        let join = Plan::LeftOuterJoinDb {
            left: Box::new(Plan::SelectDb {
                pattern: sample_pattern(),
                sl: vec![],
            }),
            left_pattern: sample_pattern(),
            left_label: 2,
            right_pattern: sample_pattern(),
            right_label: 2,
            right_sl: vec![],
            right_extract: 2,
            order: None,
        };
        assert!(join.uses_join());
        assert!(!join.uses_groupby());
    }
}
