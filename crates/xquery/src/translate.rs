//! The "naive parsing" of Sec. 4.1: FLWR → join-based TAX plan.
//!
//! The outer FOR/WHERE becomes a pattern tree, a selection, a projection,
//! and (for `distinct-values`) a duplicate elimination. A nested FLWR (or
//! a `LET` with a variable predicate) becomes a **left outer join**
//! between the outer bindings and the database — the "join-plan" pattern
//! tree of Fig. 4b / Fig. 11b. The RETURN arguments are then stitched
//! back together per outer binding (full outer join + final projection +
//! rename, fused here into [`Plan::StitchConstruct`]).
//!
//! Two deliberate inefficiencies of the naive plan are preserved, because
//! the paper calls them out: the database is selected **multiple times**
//! (the outer selection is re-evaluated as the left side of the join),
//! and the join recomputes a structural relationship that is "already
//! known" in the data.

use crate::ast::*;
use crate::error::{QueryError, Result};
use crate::plan::Plan;
use tax::ops::aggregate::AggFunc;
use tax::ops::groupby::Direction;
use tax::ops::project::ProjectItem;
use tax::pattern::{Axis, PatternNodeId, PatternTree, Pred};

/// Reserved tag of the synthetic document root (must agree with
/// `xmlstore::document::DOC_ROOT_TAG`).
const DOC_ROOT: &str = "doc_root";

/// Translate a parsed FLWR into the naive TAX plan.
pub fn translate(q: &Flwr) -> Result<Plan> {
    if let Some(cube) = &q.cube_by {
        return translate_cube(q, cube);
    }
    // ---- the outer FOR --------------------------------------------------
    let PathRoot::Document(_) = q.for_clause.source.root else {
        return Err(QueryError::Unsupported(
            "the outer FOR must range over document(…)".into(),
        ));
    };
    if q.for_clause.source.steps.is_empty() {
        return Err(QueryError::Unsupported(
            "the outer FOR path needs at least one step".into(),
        ));
    }
    if q.for_clause
        .source
        .steps
        .iter()
        .any(|s| s.predicate.is_some())
    {
        return Err(QueryError::Unsupported(
            "predicates in the outer FOR path are not supported".into(),
        ));
    }
    if !q.where_clause.is_empty() {
        return Err(QueryError::Unsupported(
            "WHERE on the outer FLWR is not supported (use a nested FLWR)".into(),
        ));
    }
    let (outer_pattern, outer_label) = chain_pattern(&q.for_clause.source.steps);

    // Selection (SL = bound variable), projection (PL = all nodes, `*` on
    // the bound variable), then duplicate elimination for
    // distinct-values.
    let mut pl: Vec<ProjectItem> = Vec::new();
    for (id, _) in outer_pattern.iter() {
        pl.push(if id == outer_label {
            ProjectItem::deep(id)
        } else {
            ProjectItem::shallow(id)
        });
    }
    let mut outer_plan = Plan::Project {
        input: Box::new(Plan::SelectDb {
            pattern: outer_pattern.clone(),
            sl: vec![outer_label],
        }),
        pattern: outer_pattern.clone(),
        pl,
        anchor_root: true,
    };
    if q.for_clause.distinct {
        outer_plan = Plan::DupElim {
            input: Box::new(outer_plan),
            pattern: outer_pattern.clone(),
            by: outer_label,
        };
    }

    // ---- the RETURN clause ----------------------------------------------
    let ReturnExpr::Element(constructor) = &q.return_clause else {
        return Err(QueryError::Unsupported(
            "the outer RETURN must be an element constructor".into(),
        ));
    };
    let outer_var = &q.for_clause.var;

    // Classify the constructor items: `{$a}` plus at most one nested part.
    let mut saw_outer_var = false;
    let mut nested_part: Option<NestedPart<'_>> = None;
    for item in &constructor.items {
        match item {
            ReturnItem::Var(v) if v == outer_var => saw_outer_var = true,
            ReturnItem::Var(v) => match &q.let_clause {
                Some(l) if &l.var == v => {
                    set_nested(&mut nested_part, NestedPart::Let { agg: None })?
                }
                _ => return Err(QueryError::UnboundVariable(v.clone())),
            },
            ReturnItem::Agg(func, v, path) => {
                if !path.is_empty() {
                    return Err(QueryError::Unsupported(
                        "aggregates over a path are only supported with CUBE BY".into(),
                    ));
                }
                match &q.let_clause {
                    Some(l) if &l.var == v => {
                        set_nested(&mut nested_part, NestedPart::Let { agg: Some(*func) })?
                    }
                    _ => return Err(QueryError::UnboundVariable(v.clone())),
                }
            }
            ReturnItem::Nested(flwr) => set_nested(&mut nested_part, NestedPart::Flwr(flwr))?,
            ReturnItem::VarPath(..) => {
                return Err(QueryError::Unsupported(
                    "path items in the outer RETURN are not supported".into(),
                ))
            }
        }
    }
    if !saw_outer_var {
        return Err(QueryError::Unsupported(
            "the outer RETURN must emit the FOR variable ({$a})".into(),
        ));
    }

    // ---- the nested part: build the join-plan ---------------------------
    let Some(part) = nested_part else {
        // Pure projection query: no join needed.
        return Ok(Plan::StitchConstruct {
            outer: Box::new(outer_plan),
            outer_pattern: outer_pattern.clone(),
            outer_label,
            inner: None,
            inner_pattern: PatternTree::with_root(Pred::True),
            inner_label: 0,
            inner_extract: vec![],
            agg: None,
            order: None,
            tag: constructor.tag.clone(),
        });
    };

    let (right, agg) = match part {
        NestedPart::Flwr(nested) => (build_right_from_nested(outer_var, nested)?, None),
        NestedPart::Let { agg } => {
            if q.order_by.is_some() {
                return Err(QueryError::Unsupported(
                    "ORDER BY with the LET formulation is not supported".into(),
                ));
            }
            let l = q.let_clause.as_ref().expect("checked above");
            (build_right_from_let(outer_var, l)?, agg)
        }
    };
    let agg: Option<(AggFunc, String)> = agg.map(|f| (agg_func_of(f), f.name().to_owned()));

    // The stitch pattern navigates the TAX_prod_root trees produced by
    // the join: the outer part carries the key; the right witness carries
    // the bound element and the extracted nodes.
    // Witness trees mirror their pattern's shape with *direct* arena
    // children, so every stitch edge is pc — this also keeps the key
    // binding from wandering into the right witness's deep subtrees.
    let mut stitch = PatternTree::with_root(Pred::tag(tax::tags::PROD_ROOT));
    let key_doc = stitch.add_child(stitch.root(), Axis::Child, Pred::tag(DOC_ROOT));
    let mut key_node = key_doc;
    for pid in path_to(&outer_pattern, outer_label) {
        key_node = stitch.add_child(key_node, Axis::Child, outer_pattern.node(pid).pred.clone());
    }
    let right_doc = stitch.add_child(stitch.root(), Axis::Child, Pred::tag(DOC_ROOT));
    // Graft paths from the right pattern's bound element down to the
    // extract (and ordering) nodes: doc_root -pc-> article -pc-> … .
    // Inside witness trees every edge is a direct (arena) child edge;
    // shared prefixes reuse the same stitch node.
    let mut stitch_map: Vec<Option<PatternNodeId>> = vec![None; right.pattern.len()];
    let extract_in_stitch = graft_path(
        &mut stitch,
        right_doc,
        &right.pattern,
        right.extract,
        &mut stitch_map,
    );
    let order_in_stitch = right.order.map(|(node, dir)| {
        (
            graft_path(
                &mut stitch,
                right_doc,
                &right.pattern,
                node,
                &mut stitch_map,
            ),
            dir,
        )
    });

    let inner = Plan::LeftOuterJoinDb {
        left: Box::new(outer_plan.clone()),
        left_pattern: outer_pattern.clone(),
        left_label: outer_label,
        right_pattern: right.pattern.clone(),
        right_label: right.join,
        right_sl: vec![right.bound],
        right_extract: right.extract,
        order: right.order,
    };

    Ok(Plan::StitchConstruct {
        outer: Box::new(outer_plan),
        outer_pattern,
        outer_label,
        inner: Some(Box::new(inner)),
        inner_pattern: stitch,
        inner_label: key_node,
        inner_extract: vec![(extract_in_stitch, true)],
        agg,
        order: order_in_stitch,
        tag: constructor.tag.clone(),
    })
}

/// Translate a `CUBE BY` query into its *composed* form: a `Union` with
/// one canonical `Project ∘ Aggregate ∘ GroupBy` pipeline per lattice
/// level, every branch sharing the same full grouping pattern (so the
/// witness streams are identical) and grouping on the basis prefix
/// `basis[..k]`. The `cube-fuse` optimizer rule collapses the union
/// into one [`Plan::Cube`] scan; without it (the materializing
/// optimizer) the union *is* the byte-identity reference plan.
fn translate_cube(q: &Flwr, cube: &CubeClause) -> Result<Plan> {
    let PathRoot::Document(_) = q.for_clause.source.root else {
        return Err(QueryError::Unsupported(
            "the outer FOR must range over document(…)".into(),
        ));
    };
    if q.for_clause.source.steps.is_empty() {
        return Err(QueryError::Unsupported(
            "the outer FOR path needs at least one step".into(),
        ));
    }
    if q.for_clause
        .source
        .steps
        .iter()
        .any(|s| s.predicate.is_some())
    {
        return Err(QueryError::Unsupported(
            "predicates in the outer FOR path are not supported".into(),
        ));
    }
    if q.for_clause.distinct {
        return Err(QueryError::Unsupported(
            "distinct-values with CUBE BY is not supported".into(),
        ));
    }
    if q.let_clause.is_some() || !q.where_clause.is_empty() || q.order_by.is_some() {
        return Err(QueryError::Unsupported(
            "CUBE BY supports no LET, WHERE, or ORDER BY".into(),
        ));
    }
    if cube.var != q.for_clause.var {
        return Err(QueryError::UnboundVariable(cube.var.clone()));
    }

    // RETURN: an element constructor holding exactly one aggregate over
    // a path on the FOR variable, e.g. `<pubs>{count($b/title)}</pubs>`.
    let ReturnExpr::Element(constructor) = &q.return_clause else {
        return Err(QueryError::Unsupported(
            "the CUBE BY RETURN must be an element constructor".into(),
        ));
    };
    let [ReturnItem::Agg(func, v, agg_path)] = &constructor.items[..] else {
        return Err(QueryError::Unsupported(
            "the CUBE BY RETURN must hold exactly one aggregate item".into(),
        ));
    };
    if v != &q.for_clause.var {
        return Err(QueryError::UnboundVariable(v.clone()));
    }
    if agg_path.is_empty() {
        return Err(QueryError::Unsupported(
            "the CUBE BY aggregate needs a path, e.g. count($b/title)".into(),
        ));
    }

    // Distinct dimension leaf tags keep the per-level key projection
    // unambiguous (each wrapper child binds exactly one pattern node).
    let dim_tags: Vec<&String> = cube
        .dims
        .iter()
        .map(|d| d.last().expect("parser requires non-empty dims"))
        .collect();
    for (i, t) in dim_tags.iter().enumerate() {
        if dim_tags[..i].contains(t) {
            return Err(QueryError::Unsupported(format!(
                "CUBE BY dimensions must end in distinct tags (<{t}> repeats)"
            )));
        }
    }

    // The shared input scan: one deep subject tree per match of the FOR
    // path (exactly the grouping rewrite's input shape).
    let (subject_path, subject_in_path) = chain_pattern(&q.for_clause.source.steps);
    let input_plan = Plan::Project {
        input: Box::new(Plan::SelectDb {
            pattern: subject_path.clone(),
            sl: vec![subject_in_path],
        }),
        pattern: subject_path,
        pl: vec![ProjectItem::deep(subject_in_path)],
        anchor_root: true,
    };
    let subject_tag = &q.for_clause.source.steps.last().expect("non-empty").name;

    // The full grouping pattern: subject with every dimension grafted.
    // Every level matches this same pattern, so a tree participates only
    // when all dimensions are present (cube semantics) and the witness
    // streams of all levels coincide.
    let mut gb_pattern = PatternTree::with_root(Pred::tag(subject_tag.clone()));
    let gb_root = gb_pattern.root();
    let basis_full: Vec<tax::ops::groupby::BasisItem> = cube
        .dims
        .iter()
        .map(|dim| {
            tax::ops::groupby::BasisItem::content(add_child_chain(&mut gb_pattern, gb_root, dim))
        })
        .collect();

    // The canonical member walk for the aggregate.
    let mut agg_pattern = PatternTree::with_root(Pred::tag(tax::tags::GROUP_ROOT));
    let subroot = agg_pattern.add_child(
        agg_pattern.root(),
        Axis::Child,
        Pred::tag(tax::tags::GROUP_SUBROOT),
    );
    let member = agg_pattern.add_child(subroot, Axis::Child, Pred::tag(subject_tag.clone()));
    let of_in_agg = add_child_chain(&mut agg_pattern, member, agg_path);

    let func_tax = agg_func_of(*func);
    let new_tag = func.name().to_owned();
    let mut branches = Vec::with_capacity(basis_full.len());
    for k in 1..=basis_full.len() {
        let gb = Plan::GroupBy {
            input: Box::new(input_plan.clone()),
            pattern: gb_pattern.clone(),
            basis: basis_full[..k].to_vec(),
            ordering: vec![],
        };
        let agg = Plan::Aggregate {
            input: Box::new(gb),
            pattern: agg_pattern.clone(),
            func: func_tax,
            of: of_in_agg,
            new_tag: new_tag.clone(),
            spec: tax::ops::aggregate::UpdateSpec::AfterLastChild(0),
        };
        // The canonical flat reshape: `root { key_1 … key_k, value }`.
        let mut fp = PatternTree::with_root(Pred::tag(tax::tags::GROUP_ROOT));
        let wrapper = fp.add_child(fp.root(), Axis::Child, Pred::tag(tax::tags::GROUPING_BASIS));
        let mut pl = vec![ProjectItem::shallow(fp.root())];
        for tag in &dim_tags[..k] {
            let key = fp.add_child(wrapper, Axis::Child, Pred::tag((*tag).clone()));
            pl.push(ProjectItem::deep(key));
        }
        let agg_node = fp.add_child(fp.root(), Axis::Child, Pred::tag(new_tag.clone()));
        pl.push(ProjectItem::deep(agg_node));
        branches.push(Plan::Project {
            input: Box::new(agg),
            pattern: fp,
            pl,
            anchor_root: true,
        });
    }
    Ok(Plan::Rename {
        input: Box::new(Plan::Union { inputs: branches }),
        tag: constructor.tag.clone(),
    })
}

fn agg_func_of(f: AggName) -> AggFunc {
    match f {
        AggName::Count => AggFunc::Count,
        AggName::Sum => AggFunc::Sum,
        AggName::Min => AggFunc::Min,
        AggName::Max => AggFunc::Max,
        AggName::Avg => AggFunc::Avg,
    }
}

/// Graft the root-to-`target` path of `pattern` under `under` in
/// `stitch` (all pc edges), reusing nodes recorded in `map`.
fn graft_path(
    stitch: &mut PatternTree,
    under: PatternNodeId,
    pattern: &PatternTree,
    target: PatternNodeId,
    map: &mut [Option<PatternNodeId>],
) -> PatternNodeId {
    let mut prev = under;
    let mut last = under;
    for pid in path_to(pattern, target) {
        let node = match map[pid] {
            Some(n) => n,
            None => {
                let n = stitch.add_child(prev, Axis::Child, pattern.node(pid).pred.clone());
                map[pid] = Some(n);
                n
            }
        };
        prev = node;
        last = node;
    }
    last
}

enum NestedPart<'a> {
    Flwr(&'a Flwr),
    Let { agg: Option<AggName> },
}

fn set_nested<'a>(slot: &mut Option<NestedPart<'a>>, part: NestedPart<'a>) -> Result<()> {
    if slot.is_some() {
        return Err(QueryError::Unsupported(
            "at most one nested part per RETURN is supported".into(),
        ));
    }
    *slot = Some(part);
    Ok(())
}

/// The right ("inner") side of the join plan.
pub(crate) struct RightSide {
    /// The pattern over the database.
    pub pattern: PatternTree,
    /// The bound FOR/LET subject (e.g. the article) — adorned in the
    /// join's SL.
    pub bound: PatternNodeId,
    /// The join node compared against the outer value (e.g. the author).
    pub join: PatternNodeId,
    /// The node the nested RETURN extracts (e.g. the title).
    pub extract: PatternNodeId,
    /// The ORDER BY node and direction, if sorting was requested.
    pub order: Option<(PatternNodeId, Direction)>,
}

/// Join-plan right side from a nested FLWR:
/// `FOR $b IN document(…)//article WHERE $a = $b/author RETURN $b/title`.
fn build_right_from_nested(outer_var: &str, nested: &Flwr) -> Result<RightSide> {
    let PathRoot::Document(_) = nested.for_clause.source.root else {
        return Err(QueryError::Unsupported(
            "the nested FOR must range over document(…)".into(),
        ));
    };
    if nested.for_clause.distinct {
        return Err(QueryError::Unsupported(
            "distinct-values on the nested FOR is not supported".into(),
        ));
    }
    if nested.let_clause.is_some() {
        return Err(QueryError::Unsupported(
            "LET inside the nested FLWR is not supported".into(),
        ));
    }
    let (mut pattern, bound) = chain_pattern(&nested.for_clause.source.steps);

    // WHERE $a = $b/relpath (either orientation).
    if nested.where_clause.len() != 1 {
        return Err(QueryError::Unsupported(
            "the nested FLWR needs exactly one WHERE comparison".into(),
        ));
    }
    let cmp = &nested.where_clause[0];
    let join_path = match (&cmp.left, &cmp.right) {
        (Operand::Var(a), Operand::VarPath(b, path))
        | (Operand::VarPath(b, path), Operand::Var(a))
            if a == outer_var && b == &nested.for_clause.var =>
        {
            path
        }
        _ => return Err(QueryError::Unsupported(
            "the nested WHERE must compare the outer variable with a path on the nested variable"
                .into(),
        )),
    };
    let join = add_child_chain(&mut pattern, bound, join_path);

    // RETURN $b/relpath2.
    let ReturnExpr::Path(v, ret_path) = &nested.return_clause else {
        return Err(QueryError::Unsupported(
            "the nested RETURN must be a path on the nested variable".into(),
        ));
    };
    if v != &nested.for_clause.var {
        return Err(QueryError::UnboundVariable(v.clone()));
    }
    let extract = add_child_chain(&mut pattern, bound, ret_path);

    // ORDER BY $b/path [ASCENDING|DESCENDING] — Sec. 4.1: "The ordering
    // list will be generated … only if sorting was requested by the
    // user."
    let order = match &nested.order_by {
        None => None,
        Some(ob) => {
            if ob.var != nested.for_clause.var {
                return Err(QueryError::Unsupported(
                    "ORDER BY must sort on a path of the nested FOR variable".into(),
                ));
            }
            let node = if *ob.path == *ret_path {
                extract
            } else {
                add_child_chain(&mut pattern, bound, &ob.path)
            };
            let dir = if ob.descending {
                Direction::Descending
            } else {
                Direction::Ascending
            };
            Some((node, dir))
        }
    };
    Ok(RightSide {
        pattern,
        bound,
        join,
        extract,
        order,
    })
}

/// Join-plan right side from a LET clause:
/// `LET $t := document(…)//article[author = $a]/title`.
fn build_right_from_let(outer_var: &str, l: &LetClause) -> Result<RightSide> {
    let PathRoot::Document(_) = l.source.root else {
        return Err(QueryError::Unsupported(
            "the LET path must start at document(…)".into(),
        ));
    };
    // Exactly one step carries the `[relpath = $outer]` predicate; the
    // predicated step is the bound subject, the remaining steps lead to
    // the extracted node.
    let mut pred_step: Option<usize> = None;
    for (i, step) in l.source.steps.iter().enumerate() {
        if step.predicate.is_some() {
            if pred_step.is_some() {
                return Err(QueryError::Unsupported(
                    "only one predicated step is supported in LET".into(),
                ));
            }
            pred_step = Some(i);
        }
    }
    let Some(subject_idx) = pred_step else {
        return Err(QueryError::Unsupported(
            "the LET path needs a [child = $var] predicate to correlate with the FOR".into(),
        ));
    };
    if subject_idx + 1 != l.source.steps.len() - 1 {
        return Err(QueryError::Unsupported(
            "the LET path must be …//subject[path = $var]/extracted".into(),
        ));
    }
    let (mut pattern, _) = chain_pattern(&l.source.steps[..subject_idx + 1]);
    let bound = pattern.preorder().into_iter().last().expect("non-empty");
    let step_pred = l.source.steps[subject_idx]
        .predicate
        .as_ref()
        .expect("located above");
    match &step_pred.rhs {
        Operand::Var(v) if v == outer_var => {}
        _ => {
            return Err(QueryError::Unsupported(
                "the LET predicate must compare against the outer FOR variable".into(),
            ))
        }
    }
    let join = add_child_chain(&mut pattern, bound, &step_pred.path);
    let last_step = &l.source.steps[l.source.steps.len() - 1];
    let extract = pattern.add_child(
        bound,
        axis_of(last_step.axis),
        Pred::tag(last_step.name.clone()),
    );
    Ok(RightSide {
        pattern,
        bound,
        join,
        extract,
        order: None,
    })
}

/// Build `doc_root` + the step chain; returns the pattern and the last
/// node.
fn chain_pattern(steps: &[Step]) -> (PatternTree, PatternNodeId) {
    let mut p = PatternTree::with_root(Pred::tag(DOC_ROOT));
    let mut cur = p.root();
    for step in steps {
        cur = p.add_child(cur, axis_of(step.axis), Pred::tag(step.name.clone()));
    }
    (p, cur)
}

/// Append a `/a/b/c` chain of pc edges under `from`; returns the last
/// node.
fn add_child_chain(
    pattern: &mut PatternTree,
    from: PatternNodeId,
    names: &[String],
) -> PatternNodeId {
    let mut cur = from;
    for name in names {
        cur = pattern.add_child(cur, Axis::Child, Pred::tag(name.clone()));
    }
    cur
}

fn axis_of(a: StepAxis) -> Axis {
    match a {
        StepAxis::Child => Axis::Child,
        StepAxis::Descendant => Axis::Descendant,
    }
}

/// The node ids on the path from the pattern root (exclusive) down to
/// `target` (inclusive).
fn path_to(pattern: &PatternTree, target: PatternNodeId) -> Vec<PatternNodeId> {
    let mut path = vec![target];
    let mut cur = target;
    while let Some(parent) = pattern.node(cur).parent {
        if parent == pattern.root() {
            break;
        }
        path.push(parent);
        cur = parent;
    }
    path.reverse();
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;

    const QUERY1: &str = r#"
        FOR $a IN distinct-values(document("bib.xml")//author)
        RETURN <authorpubs>
          {$a}
          { FOR $b IN document("bib.xml")//article
            WHERE $a = $b/author
            RETURN $b/title }
        </authorpubs>
    "#;

    const QUERY2: &str = r#"
        FOR $a IN distinct-values(document("bib.xml")//author)
        LET $t := document("bib.xml")//article[author = $a]/title
        RETURN <authorpubs> {$a} {$t} </authorpubs>
    "#;

    #[test]
    fn query1_naive_plan_shape() {
        let plan = translate(&parse_query(QUERY1).unwrap()).unwrap();
        assert!(plan.uses_join(), "naive plan must use the left outer join");
        assert!(!plan.uses_groupby());
        let text = plan.explain();
        assert!(text.contains("StitchConstruct <authorpubs>"), "{text}");
        assert!(text.contains("DupElim"), "{text}");
        assert!(text.contains("LeftOuterJoinDb"), "{text}");
        // The outer selection appears twice (the paper's "multiple
        // selections over the database").
        assert_eq!(text.matches("SelectDb").count(), 2, "{text}");
    }

    #[test]
    fn query1_join_plan_pattern_matches_fig4b() {
        let plan = translate(&parse_query(QUERY1).unwrap()).unwrap();
        let Plan::StitchConstruct {
            inner: Some(inner), ..
        } = &plan
        else {
            panic!()
        };
        let Plan::LeftOuterJoinDb {
            right_pattern,
            right_label,
            right_sl,
            ..
        } = inner.as_ref()
        else {
            panic!()
        };
        let s = crate::plan::pattern_summary(right_pattern);
        // doc_root -ad-> article; article -pc-> author; article -pc-> title.
        assert_eq!(
            s,
            "[$1:doc_root, $1-ad->$2:article, $2-pc->$3:author, $2-pc->$4:title]"
        );
        assert_eq!(*right_label, 2); // the author node
        assert_eq!(right_sl, &vec![1]); // SL: $5 (the article) in paper numbering
    }

    #[test]
    fn query2_let_form_translates() {
        let plan = translate(&parse_query(QUERY2).unwrap()).unwrap();
        assert!(plan.uses_join());
        let Plan::StitchConstruct {
            inner: Some(inner),
            agg,
            ..
        } = &plan
        else {
            panic!()
        };
        assert!(agg.is_none());
        let Plan::LeftOuterJoinDb { right_pattern, .. } = inner.as_ref() else {
            panic!()
        };
        let s = crate::plan::pattern_summary(right_pattern);
        assert_eq!(
            s,
            "[$1:doc_root, $1-ad->$2:article, $2-pc->$3:author, $2-pc->$4:title]"
        );
    }

    #[test]
    fn count_variant_sets_count_tag() {
        let q = r#"
            FOR $a IN distinct-values(document("bib.xml")//author)
            LET $t := document("bib.xml")//article[author = $a]/title
            RETURN <authorpubs> {$a} {count($t)} </authorpubs>
        "#;
        let plan = translate(&parse_query(q).unwrap()).unwrap();
        let Plan::StitchConstruct { agg, .. } = &plan else {
            panic!()
        };
        assert_eq!(agg.as_ref().map(|(_, t)| t.as_str()), Some("count"));
    }

    #[test]
    fn projection_only_query() {
        let q = r#"
            FOR $a IN distinct-values(document("bib.xml")//author)
            RETURN <row> {$a} </row>
        "#;
        let plan = translate(&parse_query(q).unwrap()).unwrap();
        assert!(!plan.uses_join());
        let Plan::StitchConstruct { inner, .. } = &plan else {
            panic!()
        };
        assert!(inner.is_none());
    }

    #[test]
    fn institution_query_multi_step_join_path() {
        let q = r#"
            FOR $i IN distinct-values(document("bib.xml")//institution)
            RETURN <instpubs>
              {$i}
              { FOR $b IN document("bib.xml")//article
                WHERE $i = $b/author/institution
                RETURN $b/title }
            </instpubs>
        "#;
        let plan = translate(&parse_query(q).unwrap()).unwrap();
        let Plan::StitchConstruct {
            inner: Some(inner), ..
        } = &plan
        else {
            panic!()
        };
        let Plan::LeftOuterJoinDb {
            right_pattern,
            right_label,
            ..
        } = inner.as_ref()
        else {
            panic!()
        };
        assert_eq!(
            right_pattern.node(*right_label).pred.required_tag(),
            Some("institution")
        );
    }

    #[test]
    fn unsupported_shapes_error_cleanly() {
        // Outer WHERE.
        let e = translate(
            &parse_query(r#"FOR $a IN document("b")//x WHERE $a = "1" RETURN <t>{$a}</t>"#)
                .unwrap(),
        );
        assert!(matches!(e, Err(QueryError::Unsupported(_))));
        // RETURN without the outer var.
        let e = translate(&parse_query(r#"FOR $a IN document("b")//x RETURN <t></t>"#).unwrap());
        assert!(matches!(e, Err(QueryError::Unsupported(_))));
        // Unbound variable in RETURN.
        let e = translate(
            &parse_query(r#"FOR $a IN document("b")//x RETURN <t>{$a}{$z}</t>"#).unwrap(),
        );
        assert!(matches!(e, Err(QueryError::UnboundVariable(_))));
    }

    const QUERY_CUBE: &str = r#"
        FOR $b IN document("bib.xml")//article
        CUBE BY $b/journal, $b/year, $b/author
        RETURN <pubs> {count($b/title)} </pubs>
    "#;

    #[test]
    fn cube_translates_to_a_prefix_union() {
        let plan = translate(&parse_query(QUERY_CUBE).unwrap()).unwrap();
        let Plan::Rename { input, tag } = &plan else {
            panic!("outer node must rename to the constructor tag")
        };
        assert_eq!(tag, "pubs");
        let Plan::Union { inputs } = input.as_ref() else {
            panic!("cube translation is a union of lattice levels")
        };
        assert_eq!(inputs.len(), 3, "one branch per dimension prefix");
        let mut shared_pattern = None;
        let mut shared_input = None;
        for (i, branch) in inputs.iter().enumerate() {
            let Plan::Project { input, .. } = branch else {
                panic!("branch {i} is not the flat reshape")
            };
            let Plan::Aggregate { input, .. } = input.as_ref() else {
                panic!("branch {i} lacks the aggregate")
            };
            let Plan::GroupBy {
                input,
                pattern,
                basis,
                ordering,
            } = input.as_ref()
            else {
                panic!("branch {i} lacks the grouping")
            };
            assert_eq!(basis.len(), i + 1, "branch {i} groups on the prefix");
            assert!(ordering.is_empty());
            // Every level shares the full pattern and the same scan, so
            // the witness streams coincide (and cube-fuse can fire).
            let text = crate::plan::pattern_summary(pattern);
            assert_eq!(*shared_pattern.get_or_insert_with(|| text.clone()), text);
            let scan = input.explain();
            assert_eq!(*shared_input.get_or_insert_with(|| scan.clone()), scan);
        }
        assert_eq!(
            shared_pattern.unwrap(),
            "[$1:article, $1-pc->$2:journal, $1-pc->$3:year, $1-pc->$4:author]"
        );
    }

    #[test]
    fn cube_rejects_unsupported_shapes() {
        for (q, needle) in [
            (
                r#"FOR $b IN distinct-values(document("bib.xml")//article)
                   CUBE BY $b/journal RETURN <p>{count($b/title)}</p>"#,
                "distinct-values",
            ),
            (
                r#"FOR $b IN document("bib.xml")//article CUBE BY $b/journal
                   WHERE $b = "x" RETURN <p>{count($b/title)}</p>"#,
                "LET, WHERE, or ORDER BY",
            ),
            (
                r#"FOR $b IN document("bib.xml")//article
                   CUBE BY $b/year, $b/old/year RETURN <p>{count($b/title)}</p>"#,
                "distinct tags",
            ),
            (
                r#"FOR $b IN document("bib.xml")//article
                   CUBE BY $b/journal RETURN <p>{count($b)}</p>"#,
                "needs a path",
            ),
            (
                r#"FOR $b IN document("bib.xml")//article
                   CUBE BY $b/journal RETURN <p>{$b}{count($b/title)}</p>"#,
                "exactly one aggregate",
            ),
        ] {
            let err = translate(&parse_query(q).unwrap()).unwrap_err();
            assert!(err.to_string().contains(needle), "{q}: {err}");
        }
    }

    #[test]
    fn aggregate_paths_without_cube_by_are_rejected() {
        let q = parse_query(
            r#"FOR $a IN distinct-values(document("b")//author)
               LET $t := document("b")//article[author = $a]/title
               RETURN <r> {$a} {count($t/x)} </r>"#,
        )
        .unwrap();
        let err = translate(&q).unwrap_err();
        assert!(err.to_string().contains("CUBE BY"), "{err}");
    }
}
