//! Errors for parsing and translating queries.

use std::fmt;

/// Result alias for query processing.
pub type Result<T> = std::result::Result<T, QueryError>;

/// An error from the XQuery front end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// Lexical error at a byte offset.
    Lex { offset: usize, message: String },
    /// Syntax error.
    Parse { offset: usize, message: String },
    /// The query is valid XQuery-subset syntax but outside what the
    /// translator supports.
    Unsupported(String),
    /// A variable was used before being bound.
    UnboundVariable(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Lex { offset, message } => {
                write!(f, "lexical error at byte {offset}: {message}")
            }
            QueryError::Parse { offset, message } => {
                write!(f, "syntax error at byte {offset}: {message}")
            }
            QueryError::Unsupported(m) => write!(f, "unsupported query: {m}"),
            QueryError::UnboundVariable(v) => write!(f, "unbound variable ${v}"),
        }
    }
}

impl std::error::Error for QueryError {}
