//! Abstract syntax of the FLWR subset.

/// A FLWR expression: one `FOR`, an optional `LET`, `WHERE` comparisons,
/// and a `RETURN` constructor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flwr {
    /// The `FOR $v IN …` clause.
    pub for_clause: ForClause,
    /// An optional `CUBE BY $v/dim, …` clause (the grouping lattice).
    pub cube_by: Option<CubeClause>,
    /// An optional `LET $v := …` clause.
    pub let_clause: Option<LetClause>,
    /// Conjunctive `WHERE` comparisons.
    pub where_clause: Vec<Comparison>,
    /// Optional `ORDER BY $v/path [ASCENDING|DESCENDING]`.
    pub order_by: Option<OrderBy>,
    /// The `RETURN` expression.
    pub return_clause: ReturnExpr,
}

/// An `ORDER BY` clause on a FLWR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderBy {
    /// The variable whose bound element the path starts from.
    pub var: String,
    /// Relative child path (e.g. `title`).
    pub path: Vec<String>,
    /// Sort direction (ascending when unspecified).
    pub descending: bool,
}

/// `CUBE BY $v/dim1, $v/dim2, …` — an ordered list of grouping
/// dimensions rooted at the FOR variable. The query's aggregate is
/// computed at every *prefix* of the list (the grouping lattice):
/// `CUBE BY $b/journal, $b/year` groups by journal and by
/// (journal, year).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CubeClause {
    /// The FOR variable the dimension paths start from.
    pub var: String,
    /// The dimension paths (relative child paths), coarsest first.
    pub dims: Vec<Vec<String>>,
}

/// `FOR $var IN [distinct-values(] source [)]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForClause {
    /// Variable name without the `$`.
    pub var: String,
    /// Whether the source is wrapped in `distinct-values(...)`.
    pub distinct: bool,
    /// The binding path.
    pub source: PathExpr,
}

/// `LET $var := path`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LetClause {
    /// Variable name without the `$`.
    pub var: String,
    /// The bound path (may carry a `[child = $v]` predicate).
    pub source: PathExpr,
}

/// A path expression: a root plus steps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathExpr {
    /// Where the path starts.
    pub root: PathRoot,
    /// The steps, in order.
    pub steps: Vec<Step>,
}

/// The origin of a path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathRoot {
    /// `document("file.xml")`.
    Document(String),
    /// A bound variable, `$v`.
    Var(String),
}

/// One path step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// `/name` (child) or `//name` (descendant).
    pub axis: StepAxis,
    /// Element name.
    pub name: String,
    /// Optional `[relpath = operand]` predicate.
    pub predicate: Option<StepPredicate>,
}

/// The axis of a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepAxis {
    /// `/`
    Child,
    /// `//`
    Descendant,
}

/// A step predicate `[a/b = rhs]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepPredicate {
    /// The relative child path on the left (e.g. `author` or
    /// `author/institution`).
    pub path: Vec<String>,
    /// The right-hand side.
    pub rhs: Operand,
}

/// A comparison operand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operand {
    /// `$v`
    Var(String),
    /// A string literal.
    Literal(String),
    /// `$v/rel/path`
    VarPath(String, Vec<String>),
}

/// An equality comparison in `WHERE`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comparison {
    /// Left operand.
    pub left: Operand,
    /// Right operand.
    pub right: Operand,
}

/// The `RETURN` expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReturnExpr {
    /// `<tag> item… </tag>`
    Element(Constructor),
    /// `$v/rel/path` (a bare path — used by nested FLWRs like
    /// `RETURN $b/title`).
    Path(String, Vec<String>),
    /// `$v`
    Var(String),
}

/// An element constructor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constructor {
    /// Element name.
    pub tag: String,
    /// Embedded `{ … }` items, in order.
    pub items: Vec<ReturnItem>,
}

/// Aggregate function names usable in a RETURN item (Sec. 4.3: "Common
/// aggregate functions are MIN, MAX, COUNT, SUM").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggName {
    /// `count(...)`
    Count,
    /// `sum(...)`
    Sum,
    /// `min(...)`
    Min,
    /// `max(...)`
    Max,
    /// `avg(...)`
    Avg,
}

impl AggName {
    /// The function (and output element) name.
    pub fn name(self) -> &'static str {
        match self {
            AggName::Count => "count",
            AggName::Sum => "sum",
            AggName::Min => "min",
            AggName::Max => "max",
            AggName::Avg => "avg",
        }
    }

    /// Parse a function name.
    pub fn parse(s: &str) -> Option<AggName> {
        match s {
            "count" => Some(AggName::Count),
            "sum" => Some(AggName::Sum),
            "min" => Some(AggName::Min),
            "max" => Some(AggName::Max),
            "avg" => Some(AggName::Avg),
            _ => None,
        }
    }
}

/// One embedded expression inside a constructor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReturnItem {
    /// `{$v}`
    Var(String),
    /// `{$v/rel/path}`
    VarPath(String, Vec<String>),
    /// `{count($v)}`, `{sum($v/path)}`, … — an aggregate over a bound
    /// variable, optionally followed by a relative child path (empty
    /// for the bare-variable form).
    Agg(AggName, String, Vec<String>),
    /// A nested FLWR.
    Nested(Box<Flwr>),
}

impl Flwr {
    /// The tag the outer RETURN constructs, if it is an element
    /// constructor.
    pub fn return_tag(&self) -> Option<&str> {
        match &self.return_clause {
            ReturnExpr::Element(c) => Some(&c.tag),
            _ => None,
        }
    }
}
