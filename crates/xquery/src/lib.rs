//! An XQuery FLWR subset, its "naive" translation into TAX algebra, and
//! the grouping rewrite — Sec. 4 of *Grouping in XML* (EDBT 2002).
//!
//! The paper's central observation is that XQuery has no grouping
//! construct: queries that *are* groupings get written as nested FLWR
//! expressions (or `LET`-bound path expressions), and a naive parser
//! translates them into selections plus a **left outer join** against the
//! database. A second pass — the rewrite of Sec. 4.1 — *detects* the
//! grouping (Phase 1) and replaces the join pipeline with the `GROUPBY`
//! operator (Phase 2), which the experiments show is substantially
//! faster.
//!
//! This crate provides:
//!
//! * [`parser`] / [`ast`] — a recursive-descent parser for the FLWR
//!   subset the paper uses: single `FOR` over
//!   `distinct-values(document(…)//path)`, optional `LET` with a
//!   predicate path, `WHERE` equality comparisons, `ORDER BY` on the
//!   nested FOR, and a `RETURN` element constructor containing variable
//!   references, aggregates (`count`/`sum`/`min`/`max`/`avg`), or one
//!   nested FLWR;
//! * [`plan`] — the logical TAX plan: selections, projections, duplicate
//!   elimination, the left-outer-join "join plan", grouping, aggregation,
//!   renaming, and the final stitch/construct step;
//! * [`mod@translate`] — the naive parse (Sec. 4.1, "Naive Parsing"),
//!   producing the join-based plan of Figs. 4, 7, 8;
//! * [`opt`] — the rule-based optimizer and its single entry point
//!   [`opt::optimize`]: the grouping rewrite of Sec. 4.1 (Phase 1
//!   detection via the pattern-tree subset test, Phase 2 the `GROUPBY`
//!   plan of Figs. 5, 9, 10), rollup fusion of grouped aggregates,
//!   projection pruning, and select→project fusion, applied to a
//!   fixpoint with a firing trace.
//!
//! # Example
//!
//! ```
//! use xquery::{opt, parse_query, translate};
//!
//! let q = r#"
//!     FOR $a IN distinct-values(document("bib.xml")//author)
//!     RETURN <authorpubs>
//!       {$a}
//!       { FOR $b IN document("bib.xml")//article
//!         WHERE $a = $b/author
//!         RETURN $b/title }
//!     </authorpubs>
//! "#;
//! let ast = parse_query(q).unwrap();
//! let naive = translate(&ast).unwrap();
//! let (optimized, trace) = opt::optimize(naive);
//! assert!(
//!     trace.fired("groupby-rewrite"),
//!     "Query 1 must be recognized as a grouping query"
//! );
//! # let _ = optimized;
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod opt;
pub mod parser;
pub mod plan;
pub mod translate;

pub use ast::Flwr;
pub use error::{QueryError, Result};
pub use parser::parse_query;
pub use plan::Plan;
pub use translate::translate;
