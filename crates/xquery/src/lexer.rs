//! Tokenizer for the FLWR subset.

use crate::error::{QueryError, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `FOR`, `LET`, `WHERE`, `RETURN`, `IN`, `AND`, `ORDER`, `BY`,
    /// `ASCENDING`, `DESCENDING` (case-insensitive).
    Keyword(Keyword),
    /// `$name`
    Var(String),
    /// A bare name (element name, function name).
    Name(String),
    /// A string literal (quotes stripped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `/`
    Slash,
    /// `//`
    DoubleSlash,
    /// `=`
    Eq,
    /// `:=`
    Assign,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `</`
    LtSlash,
    /// `,`
    Comma,
}

/// Recognized keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keyword {
    For,
    Let,
    Where,
    Return,
    In,
    And,
    Order,
    By,
    Ascending,
    Descending,
}

/// A token with its byte offset (for error messages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Byte offset of the token start.
    pub offset: usize,
}

/// Tokenize an input query.
pub fn tokenize(input: &str) -> Result<Vec<Spanned>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        let start = i;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
                continue;
            }
            b'(' => {
                // Skip XQuery comments `(: … :)`.
                if bytes.get(i + 1) == Some(&b':') {
                    let mut j = i + 2;
                    let mut depth = 1;
                    while j + 1 < bytes.len() && depth > 0 {
                        if bytes[j] == b'(' && bytes[j + 1] == b':' {
                            depth += 1;
                            j += 2;
                        } else if bytes[j] == b':' && bytes[j + 1] == b')' {
                            depth -= 1;
                            j += 2;
                        } else {
                            j += 1;
                        }
                    }
                    if depth > 0 {
                        return Err(QueryError::Lex {
                            offset: start,
                            message: "unterminated comment".into(),
                        });
                    }
                    i = j;
                    continue;
                }
                tokens.push(Spanned {
                    token: Token::LParen,
                    offset: start,
                });
                i += 1;
            }
            b')' => {
                tokens.push(Spanned {
                    token: Token::RParen,
                    offset: start,
                });
                i += 1;
            }
            b'{' => {
                tokens.push(Spanned {
                    token: Token::LBrace,
                    offset: start,
                });
                i += 1;
            }
            b'}' => {
                tokens.push(Spanned {
                    token: Token::RBrace,
                    offset: start,
                });
                i += 1;
            }
            b'[' => {
                tokens.push(Spanned {
                    token: Token::LBracket,
                    offset: start,
                });
                i += 1;
            }
            b']' => {
                tokens.push(Spanned {
                    token: Token::RBracket,
                    offset: start,
                });
                i += 1;
            }
            b',' => {
                tokens.push(Spanned {
                    token: Token::Comma,
                    offset: start,
                });
                i += 1;
            }
            b'=' => {
                tokens.push(Spanned {
                    token: Token::Eq,
                    offset: start,
                });
                i += 1;
            }
            b':' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Spanned {
                    token: Token::Assign,
                    offset: start,
                });
                i += 2;
            }
            b'/' => {
                if bytes.get(i + 1) == Some(&b'/') {
                    tokens.push(Spanned {
                        token: Token::DoubleSlash,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Spanned {
                        token: Token::Slash,
                        offset: start,
                    });
                    i += 1;
                }
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'/') {
                    tokens.push(Spanned {
                        token: Token::LtSlash,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Spanned {
                        token: Token::Lt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            b'>' => {
                tokens.push(Spanned {
                    token: Token::Gt,
                    offset: start,
                });
                i += 1;
            }
            b'"' | b'\'' => {
                let quote = b;
                let mut j = i + 1;
                while j < bytes.len() && bytes[j] != quote {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(QueryError::Lex {
                        offset: start,
                        message: "unterminated string literal".into(),
                    });
                }
                tokens.push(Spanned {
                    token: Token::Str(input[i + 1..j].to_owned()),
                    offset: start,
                });
                i = j + 1;
            }
            b'$' => {
                let mut j = i + 1;
                while j < bytes.len() && is_name_byte(bytes[j]) {
                    j += 1;
                }
                if j == i + 1 {
                    return Err(QueryError::Lex {
                        offset: start,
                        message: "expected a variable name after '$'".into(),
                    });
                }
                tokens.push(Spanned {
                    token: Token::Var(input[i + 1..j].to_owned()),
                    offset: start,
                });
                i = j;
            }
            _ if is_name_start_byte(b) => {
                let mut j = i + 1;
                while j < bytes.len() && is_name_byte(bytes[j]) {
                    j += 1;
                }
                let word = &input[i..j];
                let token = match word.to_ascii_uppercase().as_str() {
                    "FOR" => Token::Keyword(Keyword::For),
                    "LET" => Token::Keyword(Keyword::Let),
                    "WHERE" => Token::Keyword(Keyword::Where),
                    "RETURN" => Token::Keyword(Keyword::Return),
                    "IN" => Token::Keyword(Keyword::In),
                    "AND" => Token::Keyword(Keyword::And),
                    "ORDER" => Token::Keyword(Keyword::Order),
                    "BY" => Token::Keyword(Keyword::By),
                    "ASCENDING" => Token::Keyword(Keyword::Ascending),
                    "DESCENDING" => Token::Keyword(Keyword::Descending),
                    _ => Token::Name(word.to_owned()),
                };
                tokens.push(Spanned {
                    token,
                    offset: start,
                });
                i = j;
            }
            _ => {
                return Err(QueryError::Lex {
                    offset: start,
                    message: format!("unexpected character {:?}", b as char),
                });
            }
        }
    }
    Ok(tokens)
}

fn is_name_start_byte(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_name_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        tokenize(s).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            toks("FOR for For"),
            vec![
                Token::Keyword(Keyword::For),
                Token::Keyword(Keyword::For),
                Token::Keyword(Keyword::For)
            ]
        );
    }

    #[test]
    fn variables_and_names() {
        assert_eq!(
            toks("$a author distinct-values"),
            vec![
                Token::Var("a".into()),
                Token::Name("author".into()),
                Token::Name("distinct-values".into())
            ]
        );
    }

    #[test]
    fn slashes() {
        assert_eq!(
            toks("//article/author"),
            vec![
                Token::DoubleSlash,
                Token::Name("article".into()),
                Token::Slash,
                Token::Name("author".into())
            ]
        );
    }

    #[test]
    fn strings_both_quotes() {
        assert_eq!(
            toks(r#""bib.xml" 'x'"#),
            vec![Token::Str("bib.xml".into()), Token::Str("x".into())]
        );
    }

    #[test]
    fn assign_and_eq() {
        assert_eq!(toks(":= ="), vec![Token::Assign, Token::Eq]);
    }

    #[test]
    fn angle_tokens() {
        assert_eq!(
            toks("<authorpubs> </authorpubs>"),
            vec![
                Token::Lt,
                Token::Name("authorpubs".into()),
                Token::Gt,
                Token::LtSlash,
                Token::Name("authorpubs".into()),
                Token::Gt
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("FOR (: a (: nested :) comment :) $x"),
            vec![Token::Keyword(Keyword::For), Token::Var("x".into())]
        );
    }

    #[test]
    fn errors() {
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("$ ").is_err());
        assert!(tokenize("#").is_err());
        assert!(tokenize("(: open").is_err());
    }

    #[test]
    fn offsets_recorded() {
        let ts = tokenize("FOR $a").unwrap();
        assert_eq!(ts[0].offset, 0);
        assert_eq!(ts[1].offset, 4);
    }
}
