//! Recursive-descent parser for the FLWR subset.

use crate::ast::*;
use crate::error::{QueryError, Result};
use crate::lexer::{tokenize, Keyword, Spanned, Token};

/// Parse a complete query (one FLWR expression).
pub fn parse_query(input: &str) -> Result<Flwr> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let flwr = p.parse_flwr()?;
    if p.pos != p.tokens.len() {
        return Err(p.err("trailing input after the query"));
    }
    Ok(flwr)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

/// Canonical (lowercase) spelling of a keyword used as a name.
fn keyword_word(k: Keyword) -> &'static str {
    match k {
        Keyword::For => "for",
        Keyword::Let => "let",
        Keyword::Where => "where",
        Keyword::Return => "return",
        Keyword::In => "in",
        Keyword::And => "and",
        Keyword::Order => "order",
        Keyword::By => "by",
        Keyword::Ascending => "ascending",
        Keyword::Descending => "descending",
    }
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Token, what: &str) -> Result<()> {
        if self.eat(&t) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {what}")))
        }
    }

    fn err(&self, message: &str) -> QueryError {
        let offset = self
            .tokens
            .get(self.pos)
            .map(|s| s.offset)
            .unwrap_or_else(|| self.tokens.last().map(|s| s.offset + 1).unwrap_or(0));
        QueryError::Parse {
            offset,
            message: message.to_owned(),
        }
    }

    fn expect_keyword(&mut self, k: Keyword, what: &str) -> Result<()> {
        self.expect(Token::Keyword(k), what)
    }

    fn expect_var(&mut self) -> Result<String> {
        match self.bump() {
            Some(Token::Var(v)) => Ok(v),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected a variable ($name)"))
            }
        }
    }

    /// Names in paths and tags; keywords are contextual, so `//order`
    /// or `<count>` are ordinary names here (normalized to lowercase —
    /// the lexer does not preserve a keyword's original spelling).
    fn expect_name(&mut self) -> Result<String> {
        match self.bump() {
            Some(Token::Name(n)) => Ok(n),
            Some(Token::Keyword(k)) => Ok(keyword_word(k).to_owned()),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected a name"))
            }
        }
    }

    fn parse_flwr(&mut self) -> Result<Flwr> {
        self.expect_keyword(Keyword::For, "FOR")?;
        let var = self.expect_var()?;
        self.expect_keyword(Keyword::In, "IN")?;
        let (distinct, source) = self.parse_for_source()?;

        // `CUBE` is contextual (an ordinary Name token), recognized only
        // when immediately followed by `BY`.
        let cube_by =
            if matches!(self.peek(), Some(Token::Name(n)) if n.eq_ignore_ascii_case("cube")) {
                self.bump();
                self.expect_keyword(Keyword::By, "BY after CUBE")?;
                let mut cvar = None;
                let mut dims = Vec::new();
                loop {
                    let v = self.expect_var()?;
                    match &cvar {
                        None => cvar = Some(v),
                        Some(first) if *first == v => {}
                        Some(first) => {
                            return Err(self
                                .err(&format!("CUBE BY dimensions must all start from ${first}")))
                        }
                    }
                    let mut path = Vec::new();
                    while self.eat(&Token::Slash) {
                        path.push(self.expect_name()?);
                    }
                    if path.is_empty() {
                        return Err(self.err("expected a path after the CUBE BY variable"));
                    }
                    dims.push(path);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                Some(CubeClause {
                    var: cvar.expect("at least one dimension"),
                    dims,
                })
            } else {
                None
            };

        let let_clause = if self.eat(&Token::Keyword(Keyword::Let)) {
            let lvar = self.expect_var()?;
            self.expect(Token::Assign, "':=' after LET variable")?;
            let lsource = self.parse_path()?;
            Some(LetClause {
                var: lvar,
                source: lsource,
            })
        } else {
            None
        };

        let mut where_clause = Vec::new();
        if self.eat(&Token::Keyword(Keyword::Where)) {
            loop {
                where_clause.push(self.parse_comparison()?);
                if !self.eat(&Token::Keyword(Keyword::And)) {
                    break;
                }
            }
        }

        let order_by = if self.eat(&Token::Keyword(Keyword::Order)) {
            self.expect_keyword(Keyword::By, "BY after ORDER")?;
            let ovar = self.expect_var()?;
            let mut path = Vec::new();
            while self.eat(&Token::Slash) {
                path.push(self.expect_name()?);
            }
            let descending = if self.eat(&Token::Keyword(Keyword::Descending)) {
                true
            } else {
                self.eat(&Token::Keyword(Keyword::Ascending));
                false
            };
            Some(OrderBy {
                var: ovar,
                path,
                descending,
            })
        } else {
            None
        };

        self.expect_keyword(Keyword::Return, "RETURN")?;
        let return_clause = self.parse_return_expr()?;
        Ok(Flwr {
            for_clause: ForClause {
                var,
                distinct,
                source,
            },
            cube_by,
            let_clause,
            where_clause,
            order_by,
            return_clause,
        })
    }

    fn parse_for_source(&mut self) -> Result<(bool, PathExpr)> {
        if self.peek() == Some(&Token::Name("distinct-values".into())) {
            self.bump();
            self.expect(Token::LParen, "'(' after distinct-values")?;
            let p = self.parse_path()?;
            self.expect(Token::RParen, "')' closing distinct-values")?;
            Ok((true, p))
        } else {
            Ok((false, self.parse_path()?))
        }
    }

    fn parse_path(&mut self) -> Result<PathExpr> {
        let root = match self.peek().cloned() {
            Some(Token::Name(n)) if n == "document" => {
                self.bump();
                self.expect(Token::LParen, "'(' after document")?;
                let file = match self.bump() {
                    Some(Token::Str(s)) => s,
                    _ => return Err(self.err("expected a string inside document(...)")),
                };
                self.expect(Token::RParen, "')' closing document(...)")?;
                PathRoot::Document(file)
            }
            Some(Token::Var(_)) => {
                let v = self.expect_var()?;
                PathRoot::Var(v)
            }
            _ => return Err(self.err("expected document(\"…\") or a variable")),
        };
        let mut steps = Vec::new();
        loop {
            let axis = if self.eat(&Token::DoubleSlash) {
                StepAxis::Descendant
            } else if self.eat(&Token::Slash) {
                StepAxis::Child
            } else {
                break;
            };
            let name = self.expect_name()?;
            let predicate = if self.eat(&Token::LBracket) {
                let pred = self.parse_step_predicate()?;
                self.expect(Token::RBracket, "']' closing predicate")?;
                Some(pred)
            } else {
                None
            };
            steps.push(Step {
                axis,
                name,
                predicate,
            });
        }
        Ok(PathExpr { root, steps })
    }

    fn parse_step_predicate(&mut self) -> Result<StepPredicate> {
        let mut path = vec![self.expect_name()?];
        while self.eat(&Token::Slash) {
            path.push(self.expect_name()?);
        }
        self.expect(Token::Eq, "'=' in predicate")?;
        let rhs = self.parse_operand()?;
        Ok(StepPredicate { path, rhs })
    }

    fn parse_operand(&mut self) -> Result<Operand> {
        match self.bump() {
            Some(Token::Var(v)) => {
                if self.peek() == Some(&Token::Slash) {
                    let mut path = Vec::new();
                    while self.eat(&Token::Slash) {
                        path.push(self.expect_name()?);
                    }
                    Ok(Operand::VarPath(v, path))
                } else {
                    Ok(Operand::Var(v))
                }
            }
            Some(Token::Str(s)) => Ok(Operand::Literal(s)),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected a variable, a variable path, or a string"))
            }
        }
    }

    fn parse_comparison(&mut self) -> Result<Comparison> {
        let left = self.parse_operand()?;
        self.expect(Token::Eq, "'=' in comparison")?;
        let right = self.parse_operand()?;
        Ok(Comparison { left, right })
    }

    fn parse_return_expr(&mut self) -> Result<ReturnExpr> {
        match self.peek() {
            Some(Token::Lt) => {
                let c = self.parse_constructor()?;
                Ok(ReturnExpr::Element(c))
            }
            Some(Token::Var(_)) => {
                let v = self.expect_var()?;
                if self.peek() == Some(&Token::Slash) {
                    let mut path = Vec::new();
                    while self.eat(&Token::Slash) {
                        path.push(self.expect_name()?);
                    }
                    Ok(ReturnExpr::Path(v, path))
                } else {
                    Ok(ReturnExpr::Var(v))
                }
            }
            _ => Err(self.err("expected an element constructor or a path after RETURN")),
        }
    }

    fn parse_constructor(&mut self) -> Result<Constructor> {
        self.expect(Token::Lt, "'<'")?;
        let tag = self.expect_name()?;
        self.expect(Token::Gt, "'>' closing the open tag")?;
        let mut items = Vec::new();
        loop {
            if self.eat(&Token::LBrace) {
                items.push(self.parse_return_item()?);
                self.expect(Token::RBrace, "'}' closing the embedded expression")?;
            } else if self.eat(&Token::LtSlash) {
                let close = self.expect_name()?;
                if close != tag {
                    return Err(self.err(&format!("close tag </{close}> does not match <{tag}>")));
                }
                self.expect(Token::Gt, "'>' closing the close tag")?;
                return Ok(Constructor { tag, items });
            } else {
                return Err(self.err("expected '{', or the closing tag"));
            }
        }
    }

    fn parse_return_item(&mut self) -> Result<ReturnItem> {
        match self.peek().cloned() {
            Some(Token::Keyword(Keyword::For)) => {
                let nested = self.parse_flwr()?;
                Ok(ReturnItem::Nested(Box::new(nested)))
            }
            Some(Token::Name(n)) if AggName::parse(&n).is_some() => {
                let func = AggName::parse(&n).expect("checked");
                self.bump();
                self.expect(Token::LParen, "'(' after the aggregate function")?;
                let v = self.expect_var()?;
                let mut path = Vec::new();
                while self.eat(&Token::Slash) {
                    path.push(self.expect_name()?);
                }
                self.expect(Token::RParen, "')' closing the aggregate call")?;
                Ok(ReturnItem::Agg(func, v, path))
            }
            Some(Token::Var(_)) => {
                let v = self.expect_var()?;
                if self.peek() == Some(&Token::Slash) {
                    let mut path = Vec::new();
                    while self.eat(&Token::Slash) {
                        path.push(self.expect_name()?);
                    }
                    Ok(ReturnItem::VarPath(v, path))
                } else {
                    Ok(ReturnItem::Var(v))
                }
            }
            _ => Err(self.err("expected $var, an aggregate like count($var), or a nested FOR")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Query 1 of the paper.
    pub const QUERY1: &str = r#"
        FOR $a IN distinct-values(document("bib.xml")//author)
        RETURN <authorpubs>
          {$a}
          { FOR $b IN document("bib.xml")//article
            WHERE $a = $b/author
            RETURN $b/title }
        </authorpubs>
    "#;

    /// Query 2 (the unnested LET formulation).
    pub const QUERY2: &str = r#"
        FOR $a IN distinct-values(document("bib.xml")//author)
        LET $t := document("bib.xml")//article[author = $a]/title
        RETURN <authorpubs>
          {$a} {$t}
        </authorpubs>
    "#;

    /// The count variant of Sec. 6.
    pub const QUERY_COUNT: &str = r#"
        FOR $a IN distinct-values(document("bib.xml")//author)
        LET $t := document("bib.xml")//article[author = $a]/title
        RETURN <authorpubs>
          {$a} {count($t)}
        </authorpubs>
    "#;

    #[test]
    fn parses_query1() {
        let q = parse_query(QUERY1).unwrap();
        assert_eq!(q.for_clause.var, "a");
        assert!(q.for_clause.distinct);
        assert_eq!(
            q.for_clause.source.root,
            PathRoot::Document("bib.xml".into())
        );
        assert_eq!(q.for_clause.source.steps.len(), 1);
        assert_eq!(q.for_clause.source.steps[0].name, "author");
        assert_eq!(q.for_clause.source.steps[0].axis, StepAxis::Descendant);
        assert_eq!(q.return_tag(), Some("authorpubs"));
        let ReturnExpr::Element(c) = &q.return_clause else {
            panic!()
        };
        assert_eq!(c.items.len(), 2);
        assert_eq!(c.items[0], ReturnItem::Var("a".into()));
        let ReturnItem::Nested(nested) = &c.items[1] else {
            panic!("second item must be the nested FLWR")
        };
        assert_eq!(nested.for_clause.var, "b");
        assert!(!nested.for_clause.distinct);
        assert_eq!(nested.where_clause.len(), 1);
        assert_eq!(
            nested.where_clause[0],
            Comparison {
                left: Operand::Var("a".into()),
                right: Operand::VarPath("b".into(), vec!["author".into()]),
            }
        );
        assert_eq!(
            nested.return_clause,
            ReturnExpr::Path("b".into(), vec!["title".into()])
        );
    }

    #[test]
    fn parses_query2_let() {
        let q = parse_query(QUERY2).unwrap();
        let let_clause = q.let_clause.as_ref().unwrap();
        assert_eq!(let_clause.var, "t");
        let steps = &let_clause.source.steps;
        assert_eq!(steps.len(), 2);
        assert_eq!(steps[0].name, "article");
        let pred = steps[0].predicate.as_ref().unwrap();
        assert_eq!(pred.path, vec!["author".to_owned()]);
        assert_eq!(pred.rhs, Operand::Var("a".into()));
        assert_eq!(steps[1].name, "title");
        assert_eq!(steps[1].axis, StepAxis::Child);
    }

    #[test]
    fn parses_count() {
        let q = parse_query(QUERY_COUNT).unwrap();
        let ReturnExpr::Element(c) = &q.return_clause else {
            panic!()
        };
        assert_eq!(
            c.items[1],
            ReturnItem::Agg(AggName::Count, "t".into(), vec![])
        );
    }

    #[test]
    fn parses_institution_query() {
        let q = parse_query(
            r#"
            FOR $i IN distinct-values(document("bib.xml")//institution)
            RETURN <instpubs>
              {$i}
              { FOR $b IN document("bib.xml")//article
                WHERE $i = $b/author/institution
                RETURN $b/title }
            </instpubs>
        "#,
        )
        .unwrap();
        let ReturnExpr::Element(c) = &q.return_clause else {
            panic!()
        };
        let ReturnItem::Nested(nested) = &c.items[1] else {
            panic!()
        };
        assert_eq!(
            nested.where_clause[0].right,
            Operand::VarPath("b".into(), vec!["author".into(), "institution".into()])
        );
    }

    #[test]
    fn multi_step_predicate_path() {
        let q = parse_query(r#"FOR $a IN document("b.xml")//x[c/d = "v"]/y RETURN $a"#).unwrap();
        let step = &q.for_clause.source.steps[0];
        let pred = step.predicate.as_ref().unwrap();
        assert_eq!(pred.path, vec!["c".to_owned(), "d".to_owned()]);
        assert_eq!(pred.rhs, Operand::Literal("v".into()));
    }

    #[test]
    fn where_with_and() {
        let q =
            parse_query(r#"FOR $a IN document("b.xml")//x WHERE $a = "1" AND $a = "2" RETURN $a"#)
                .unwrap();
        assert_eq!(q.where_clause.len(), 2);
    }

    #[test]
    fn mismatched_constructor_tags_rejected() {
        let err = parse_query(r#"FOR $a IN document("b.xml")//x RETURN <a>{$a}</b>"#).unwrap_err();
        assert!(matches!(err, QueryError::Parse { .. }));
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(parse_query(r#"FOR $a IN document("b.xml")//x RETURN $a extra"#).is_err());
    }

    #[test]
    fn missing_return_rejected() {
        assert!(parse_query(r#"FOR $a IN document("b.xml")//x"#).is_err());
    }

    #[test]
    fn keywords_lowercase_accepted() {
        assert!(parse_query(r#"for $a in document("b.xml")//x return $a"#).is_ok());
    }

    #[test]
    fn parses_cube_by_dimension_list() {
        let q = parse_query(
            r#"FOR $b IN document("bib.xml")//article
               CUBE BY $b/journal, $b/year, $b/author/name
               RETURN <pubs> {count($b/title)} </pubs>"#,
        )
        .unwrap();
        let cube = q.cube_by.as_ref().unwrap();
        assert_eq!(cube.var, "b");
        assert_eq!(
            cube.dims,
            vec![
                vec!["journal".to_owned()],
                vec!["year".to_owned()],
                vec!["author".to_owned(), "name".to_owned()],
            ]
        );
        let ReturnExpr::Element(c) = &q.return_clause else {
            panic!()
        };
        assert_eq!(
            c.items[0],
            ReturnItem::Agg(AggName::Count, "b".into(), vec!["title".into()])
        );
    }

    #[test]
    fn cube_is_contextual_not_a_keyword() {
        // An element named "cube" still parses as a path step.
        let q = parse_query(r#"FOR $a IN document("b.xml")//cube RETURN $a"#).unwrap();
        assert_eq!(q.for_clause.source.steps[0].name, "cube");
        assert!(q.cube_by.is_none());
    }

    #[test]
    fn cube_by_rejects_foreign_variables_and_empty_paths() {
        let err = parse_query(
            r#"FOR $b IN document("bib.xml")//article
               CUBE BY $b/journal, $x/year
               RETURN <pubs> {count($b/title)} </pubs>"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("start from $b"), "{err}");
        let err = parse_query(
            r#"FOR $b IN document("bib.xml")//article
               CUBE BY $b
               RETURN <pubs> {count($b/title)} </pubs>"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("path"), "{err}");
    }
}
