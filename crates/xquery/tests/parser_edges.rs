//! Edge-case tests for the XQuery front end: lexical corner cases,
//! clause combinations, and error reporting.

use xquery::ast::{AggName, ReturnExpr, ReturnItem, StepAxis};
use xquery::{parse_query, translate, QueryError};

#[test]
fn order_by_defaults_to_ascending() {
    let q = parse_query(
        r#"FOR $a IN document("b")//x
           WHERE $a = $a
           ORDER BY $a/y
           RETURN $a"#,
    )
    .unwrap();
    let ob = q.order_by.unwrap();
    assert!(!ob.descending);
    assert_eq!(ob.path, vec!["y".to_owned()]);
}

#[test]
fn order_by_explicit_directions() {
    for (kw, desc) in [
        ("ASCENDING", false),
        ("DESCENDING", true),
        ("descending", true),
    ] {
        let q = parse_query(&format!(
            r#"FOR $a IN document("b")//x ORDER BY $a/y {kw} RETURN $a"#
        ))
        .unwrap();
        assert_eq!(q.order_by.unwrap().descending, desc, "{kw}");
    }
}

#[test]
fn nested_flwr_with_order_by() {
    let q = parse_query(
        r#"
        FOR $a IN distinct-values(document("b")//author)
        RETURN <r>
          {$a}
          { FOR $b IN document("b")//article
            WHERE $a = $b/author
            ORDER BY $b/title DESCENDING
            RETURN $b/title }
        </r>"#,
    )
    .unwrap();
    let ReturnExpr::Element(c) = &q.return_clause else {
        panic!()
    };
    let ReturnItem::Nested(nested) = &c.items[1] else {
        panic!()
    };
    assert!(nested.order_by.as_ref().unwrap().descending);
}

#[test]
fn all_aggregate_functions_parse() {
    for (name, func) in [
        ("count", AggName::Count),
        ("sum", AggName::Sum),
        ("min", AggName::Min),
        ("max", AggName::Max),
        ("avg", AggName::Avg),
    ] {
        let q = parse_query(&format!(
            r#"FOR $a IN document("b")//x LET $t := document("b")//y[z = $a]/w
               RETURN <r> {{$a}} {{{name}($t)}} </r>"#
        ))
        .unwrap();
        let ReturnExpr::Element(c) = &q.return_clause else {
            panic!()
        };
        assert_eq!(
            c.items[1],
            ReturnItem::Agg(func, "t".into(), vec![]),
            "{name}"
        );
    }
}

#[test]
fn aggregate_name_case_sensitive_lowercase_only() {
    // `COUNT` is not a recognized function name; it parses as a bare
    // name and the item fails.
    assert!(parse_query(r#"FOR $a IN document("b")//x RETURN <r> {COUNT($a)} </r>"#).is_err());
}

#[test]
fn axes_mix_in_paths() {
    let q = parse_query(r#"FOR $a IN document("b")/bib//article/author RETURN $a"#).unwrap();
    let axes: Vec<StepAxis> = q.for_clause.source.steps.iter().map(|s| s.axis).collect();
    assert_eq!(
        axes,
        [StepAxis::Child, StepAxis::Descendant, StepAxis::Child]
    );
}

#[test]
fn error_offsets_point_at_problem() {
    let err = parse_query(r#"FOR $a document("b")//x RETURN $a"#).unwrap_err();
    let QueryError::Parse { offset, .. } = err else {
        panic!("{err}")
    };
    assert_eq!(offset, 7, "should point at the missing IN");
}

#[test]
fn unsupported_translations_have_clear_messages() {
    // ORDER BY on nested variable path not on $b.
    let q = parse_query(
        r#"
        FOR $a IN distinct-values(document("b")//author)
        RETURN <r>
          {$a}
          { FOR $b IN document("b")//article
            WHERE $a = $b/author
            ORDER BY $a/name
            RETURN $b/title }
        </r>"#,
    )
    .unwrap();
    let err = translate(&q).unwrap_err();
    assert!(matches!(err, QueryError::Unsupported(_)), "{err}");
    assert!(err.to_string().contains("ORDER BY"), "{err}");
}

#[test]
fn two_nested_parts_rejected() {
    let q = parse_query(
        r#"
        FOR $a IN distinct-values(document("b")//author)
        LET $t := document("b")//article[author = $a]/title
        RETURN <r> {$a} {$t} {count($t)} </r>"#,
    )
    .unwrap();
    let err = translate(&q).unwrap_err();
    assert!(matches!(err, QueryError::Unsupported(_)));
}

#[test]
fn var_path_in_where_both_orientations() {
    for q in [
        r#"FOR $a IN distinct-values(document("b")//author)
           RETURN <r> {$a} { FOR $b IN document("b")//article
             WHERE $a = $b/author RETURN $b/title } </r>"#,
        r#"FOR $a IN distinct-values(document("b")//author)
           RETURN <r> {$a} { FOR $b IN document("b")//article
             WHERE $b/author = $a RETURN $b/title } </r>"#,
    ] {
        let ast = parse_query(q).unwrap();
        assert!(translate(&ast).is_ok(), "{q}");
    }
}

#[test]
fn deep_relative_paths_in_where() {
    let q = parse_query(
        r#"FOR $i IN distinct-values(document("b")//institution)
           RETURN <r> {$i} { FOR $b IN document("b")//article
             WHERE $i = $b/author/affiliation/institution
             RETURN $b/title } </r>"#,
    )
    .unwrap();
    assert!(translate(&q).is_ok());
}

#[test]
fn keywords_inside_tags_are_names() {
    // An element named "order" must not lex as the keyword.
    let q = parse_query(r#"FOR $a IN document("b")//order RETURN $a"#).unwrap();
    assert_eq!(q.for_clause.source.steps[0].name, "order");
}
